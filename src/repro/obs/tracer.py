"""The structured event tracer.

:class:`Tracer` attaches to an assembled :class:`~repro.smp.system.
SmpSystem` and records a timeline of what the run did into an
:class:`~repro.obs.ring.EventRing`, plus latency distributions into
:class:`~repro.sim.stats.Histogram` metrics on the system's registry:

- the **bus** reports every granted transaction (via the existing
  ``SharedBus.add_observer`` hook — attaching a tracer is what flips
  the slow path off its scratch-transaction route, exactly the
  observer contract of ``SmpSystem._next_transaction``);
- the **coherence protocol** reports each snoop outcome, which the
  tracer pairs LIFO with the miss/upgrade span that consumed it
  (memory-protection hash fetches nest misses inside misses, so a
  stack, not a queue);
- the **SMP system** reports miss and upgrade completion spans;
- the **SENSS layer** reports mask-readiness stalls and
  authentication checkpoints;
- the **memory-protection layer** reports pad-cache hits/misses and
  hash-tree verifications/updates.

Every hook site guards with a single ``is not None`` test and all
hooks live on the miss/upgrade slow path, so a system with no tracer
attached pays one pointer comparison per miss — the fused hit loop in
:mod:`repro.smp.fastpath` is untouched. Attaching a tracer never
changes simulated timing or statistics: results stay bit-identical to
an unobserved run (pinned by tests/obs/test_tracer.py).

**Category filtering** (``categories=...``, CLI
``--trace-categories``): a tracer can record just a subset of the
event categories the exporter names (:data:`TRACE_CATEGORIES` —
``bus``/``mem``/``senss``/``memprotect``/``run``/``faults``). The
filter is applied at *attach time*, not per event: layers whose
category is off are simply never hooked, so a filtered run pays only
for the events it records. In particular, leaving ``bus`` off keeps
the bus on its scratch-transaction route (no per-transaction object
allocation — the bulk of the 42.6%% full-tracing overhead on
miss-heavy runs, see the ``observability.filtered`` bench point), and
leaving ``mem`` off skips the per-miss span recording and its
histograms. Filtering never changes simulated results either.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..bus.transaction import TransactionType
from ..errors import ConfigError
from .ring import EventKind, EventRing

#: recordable event categories, matching the exporter's ``cat`` labels
#: (repro.obs.export): bus transactions; miss/upgrade memory spans;
#: SENSS security events; memory-protection events; per-CPU run spans;
#: fault injection/detection.
TRACE_CATEGORIES = ("bus", "mem", "senss", "memprotect", "run",
                    "faults")


def parse_categories(spec: Optional[str]) -> Optional[frozenset]:
    """Parse a ``bus,senss``-style CLI list; ``None``/"all" = all."""
    if spec is None:
        return None
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names or "all" in names:
        return None
    return frozenset(names)

#: stable index per transaction type, recorded in the a1 payload word
TX_TYPE_INDEX = {tx_type: index
                 for index, tx_type in enumerate(TransactionType)}
TX_TYPE_BY_INDEX = list(TransactionType)

#: snoop operation codes (protocol observer a-word)
SNOOP_READ = 0
SNOOP_READ_EXCLUSIVE = 1
SNOOP_UPGRADE = 2

#: hash-climb outcome codes
HASH_ROOT = 0
HASH_L2_HIT = 1
HASH_FETCH = 2
#: hash-update outcome codes (HASH_ROOT shared)
HASH_WRITE = 1
HASH_CLIPPED = 2

#: histogram metric names installed on attach
MISS_LATENCY = "obs.miss_latency"
UPGRADE_LATENCY = "obs.upgrade_latency"
MASK_WAIT = "obs.mask_wait_cycles"
PAD_REUSE_DISTANCE = "obs.pad_reuse_distance"
AUTH_INTERVAL_GAP = "obs.auth_interval_gap"


class Tracer:
    """Ring-buffered event tracer plus histogram metrics probe.

    ``events=False`` keeps the ring empty (metrics only — what
    ``python -m repro report`` uses); ``metrics=False`` skips the
    histograms (pure timeline); ``categories`` restricts recording to
    a subset of :data:`TRACE_CATEGORIES` (``None`` = record all) by
    not hooking the filtered-out layers at attach time. ``store``
    replaces the ring with any object sharing its surface — the
    recorder (repro.obs.recording) passes a lossless
    :class:`~repro.obs.ring.EventLog`.
    """

    def __init__(self, capacity: int = 65536, events: bool = True,
                 metrics: bool = True,
                 categories: Optional[Iterable[str]] = None,
                 store=None):
        self.ring = store if store is not None \
            else EventRing(capacity if events else 1)
        self.events_enabled = events
        self.metrics_enabled = metrics
        if categories is None:
            self.categories = frozenset(TRACE_CATEGORIES)
        else:
            self.categories = frozenset(categories)
            unknown = self.categories - set(TRACE_CATEGORIES)
            if unknown:
                raise ConfigError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"choose from {TRACE_CATEGORIES}")
        self.kind_totals: Dict[int, int] = {}
        self.workload_name: Optional[str] = None
        self.final_clocks: List[int] = []
        self._system = None
        # LIFO of (op, invalidated, supplier+1, dirty) snoop outcomes
        # awaiting their miss/upgrade completion span.
        self._snoops: List[Tuple[int, int, int, int]] = []
        self._last_auth: Dict[int, int] = {}       # group -> last cycle
        self._pad_clock: Dict[int, int] = {}       # cpu -> access count
        self._pad_last: Dict[Tuple[int, int], int] = {}  # (cpu, line)
        self._h_miss = self._h_upgrade = self._h_mask = None
        self._h_reuse = self._h_auth_gap = None

    # -- attachment ----------------------------------------------------

    def attach(self, system) -> "Tracer":
        """Hook the layers whose categories are enabled; returns self.

        Filtered-out categories are never hooked: no bus observer (so
        the scratch-transaction fast route stays), no protocol/senss/
        memprotect observer, and the per-miss callbacks are replaced
        with no-ops — a filtered tracer costs only what it records.
        """
        self._system = system
        system._obs = self
        enabled = self.categories
        if "bus" in enabled:
            system.bus.add_observer(self._on_bus_tx)
        if "mem" in enabled:
            if system.protocol is not None:
                system.protocol.observer = self
        else:
            # system._obs stays set (run-end callback), so silence the
            # per-miss notifications instead of recording them.
            self.on_miss = self._noop_miss
            self.on_upgrade = self._noop_upgrade
        if "senss" in enabled:
            layer = system.bus.security_layer
            if layer is not None:
                layer.observer = self
        if "memprotect" in enabled and system.memprotect is not None:
            system.memprotect.observer = self
        if "faults" not in enabled:
            self.on_fault_inject = self._noop_fault_inject
            self.on_fault_detect = self._noop_fault_detect
        if self.metrics_enabled:
            stats = system.stats
            if "mem" in enabled:
                self._h_miss = stats.histogram(MISS_LATENCY)
                self._h_upgrade = stats.histogram(UPGRADE_LATENCY)
            if "senss" in enabled:
                self._h_mask = stats.histogram(MASK_WAIT)
                self._h_auth_gap = stats.histogram(AUTH_INTERVAL_GAP)
            if "memprotect" in enabled:
                self._h_reuse = stats.histogram(PAD_REUSE_DISTANCE)
        return self

    # attach-time replacements for filtered-out per-event callbacks
    @staticmethod
    def _noop_miss(cpu, line_address, request, finish, is_write):
        return None

    @staticmethod
    def _noop_upgrade(cpu, line_address, request, finish):
        return None

    @staticmethod
    def _noop_fault_inject(record, cycle):
        return None

    @staticmethod
    def _noop_fault_detect(record):
        return None

    def detach(self) -> None:
        """Unhook everything; the system returns to the scratch-
        transaction fast route once no bus observers remain."""
        system = self._system
        if system is None:
            return
        system.bus.remove_observer(self._on_bus_tx)
        if system.protocol is not None and \
                system.protocol.observer is self:
            system.protocol.observer = None
        layer = system.bus.security_layer
        if layer is not None and layer.observer is self:
            layer.observer = None
        if system.memprotect is not None and \
                system.memprotect.observer is self:
            system.memprotect.observer = None
        if system._obs is self:
            system._obs = None
        self._system = None

    # -- recording core ------------------------------------------------

    def _record(self, kind: int, cycle: int, dur: int, cpu: int,
                a0: int = 0, a1: int = 0, a2: int = 0) -> None:
        totals = self.kind_totals
        totals[kind] = totals.get(kind, 0) + 1
        if self.events_enabled:
            self.ring.record(kind, cycle, dur, cpu, a0, a1, a2)

    # -- bus -----------------------------------------------------------

    def _on_bus_tx(self, transaction) -> None:
        grant = transaction.grant_cycle
        self._record(EventKind.BUS_TX, grant,
                     max(0, transaction.complete_cycle - grant),
                     transaction.source_pid, transaction.address,
                     TX_TYPE_INDEX[transaction.type],
                     1 if transaction.is_cache_to_cache else 0)

    # -- coherence protocol --------------------------------------------

    def on_snoop(self, op: int, requester: int, line_address: int,
                 outcome) -> None:
        supplier = outcome.supplier_cpu
        self._snoops.append((op, len(outcome.invalidated_cpus),
                             0 if supplier is None else supplier + 1,
                             1 if outcome.had_modified_copy else 0))

    def _pop_snoop(self) -> Tuple[int, int, int, int]:
        if self._snoops:
            return self._snoops.pop()
        return (-1, -1, 0, 0)  # protocol not instrumented

    # -- SMP system ----------------------------------------------------

    def on_miss(self, cpu: int, line_address: int, request: int,
                finish: int, is_write: bool) -> None:
        _, invalidated, supplier_word, dirty = self._pop_snoop()
        latency = finish - request
        if self._h_miss is not None:
            self._h_miss.record(latency)
        packed = supplier_word | (dirty << 8) | \
            ((1 if is_write else 0) << 9)
        self._record(EventKind.MISS, request, latency, cpu,
                     line_address, invalidated, packed)

    def on_upgrade(self, cpu: int, line_address: int, request: int,
                   finish: int) -> None:
        _, invalidated, _, _ = self._pop_snoop()
        latency = finish - request
        if self._h_upgrade is not None:
            self._h_upgrade.record(latency)
        self._record(EventKind.UPGRADE, request, latency, cpu,
                     line_address, invalidated)

    def on_run_end(self, workload_name: str, clocks) -> None:
        self.workload_name = workload_name
        self.final_clocks = list(clocks)
        if "run" in self.categories:
            for cpu, clock in enumerate(clocks):
                self._record(EventKind.RUN_SPAN, 0, clock, cpu)

    # -- SENSS layer ---------------------------------------------------

    def on_mask_stall(self, transaction, grant_cycle: int,
                      wait: int) -> None:
        if self._h_mask is not None:
            self._h_mask.record(wait)
        self._record(EventKind.MASK_STALL, grant_cycle, wait,
                     transaction.source_pid, transaction.group_id, wait)

    def on_auth_mac(self, group_id: int, initiator: int,
                    cycle: int) -> None:
        previous = self._last_auth.get(group_id)
        gap = -1 if previous is None else cycle - previous
        self._last_auth[group_id] = cycle
        if gap >= 0 and self._h_auth_gap is not None:
            self._h_auth_gap.record(gap)
        self._record(EventKind.AUTH_MAC, cycle, 0, initiator,
                     group_id, gap)

    # -- memory protection ---------------------------------------------

    def on_pad_cache(self, cpu: int, line_address: int, cycle: int,
                     hit: bool) -> None:
        sequence = self._pad_clock.get(cpu, 0)
        self._pad_clock[cpu] = sequence + 1
        key = (cpu, line_address)
        previous = self._pad_last.get(key)
        self._pad_last[key] = sequence
        if hit:
            distance = -1 if previous is None else sequence - previous
            if distance >= 0 and self._h_reuse is not None:
                self._h_reuse.record(distance)
            self._record(EventKind.PAD_HIT, cycle, 0, cpu,
                         line_address, distance)
        else:
            self._record(EventKind.PAD_MISS, cycle, 0, cpu,
                         line_address)

    def on_hash_verify(self, cpu: int, address: int, cycle: int,
                       outcome: int) -> None:
        self._record(EventKind.HASH_VERIFY, cycle, 0, cpu, address,
                     outcome)

    def on_hash_update(self, cpu: int, address: int, cycle: int,
                       outcome: int) -> None:
        self._record(EventKind.HASH_UPDATE, cycle, 0, cpu, address,
                     outcome)

    # -- fault injection (repro.faults) --------------------------------

    def on_fault_inject(self, record, cycle: int) -> None:
        from ..faults.injector import FAULT_KIND_INDEX
        self._record(EventKind.FAULT_INJECT, max(0, cycle), 0,
                     max(0, record.cpu),
                     FAULT_KIND_INDEX[record.kind], record.group_id)

    def on_fault_detect(self, record) -> None:
        from ..faults.injector import FAULT_KIND_INDEX, MECHANISM_INDEX
        self._record(EventKind.FAULT_DETECT,
                     max(0, record.detect_cycle), 0,
                     max(0, record.cpu),
                     FAULT_KIND_INDEX[record.kind],
                     MECHANISM_INDEX[record.mechanism],
                     max(0, record.latency_cycles))

    # -- summaries -----------------------------------------------------

    def histogram_summaries(self) -> Dict[str, Dict[str, object]]:
        if self._system is None or not self.metrics_enabled:
            return {}
        return {name: summary for name, summary
                in self._system.stats.histogram_summaries().items()
                if name.startswith("obs.")}

    def summary(self) -> Dict[str, object]:
        """Compact run overview: per-kind totals, drops, histograms."""
        names = {EventKind.BUS_TX: "bus_tx", EventKind.MISS: "miss",
                 EventKind.UPGRADE: "upgrade",
                 EventKind.MASK_STALL: "mask_stall",
                 EventKind.AUTH_MAC: "auth_checkpoint",
                 EventKind.PAD_HIT: "pad_cache_hit",
                 EventKind.PAD_MISS: "pad_cache_miss",
                 EventKind.HASH_VERIFY: "hash_verify",
                 EventKind.HASH_UPDATE: "hash_update",
                 EventKind.RUN_SPAN: "run_span",
                 EventKind.FAULT_INJECT: "fault_inject",
                 EventKind.FAULT_DETECT: "fault_detect"}
        return {
            "workload": self.workload_name,
            "events_recorded": self.ring.total_recorded,
            "events_retained": len(self.ring),
            "events_dropped": self.ring.dropped,
            "by_kind": {names[kind]: count for kind, count
                        in sorted(self.kind_totals.items())},
            "cycles": max(self.final_clocks) if self.final_clocks else 0,
            "histograms": self.histogram_summaries(),
        }
