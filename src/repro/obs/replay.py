"""Replay a recording with exactly one perturbed parameter.

The perturbation workflow (docs/record_replay.md): record a run, then
:func:`replay_recording` re-runs the *same* workload coordinates with
exactly one knob changed and returns a fresh
:class:`~repro.obs.recording.Recording` stamped with the perturbation,
ready for :func:`repro.obs.diff.diff_recordings`. One knob, not
several — a diff against a multi-knob replay cannot attribute the
first divergence to anything.

Supported knobs (``NAME=VALUE`` strings on the CLI):

=================  ====================================================
``auth_interval``  SENSS MAC broadcast interval (bus transactions)
``masks``          mask-array size; ``0``/``none`` = perfect supply
``engine``         backend (``scalar``/``vector``/``auto``) — backends
                   are bit-identical, so this perturbation is the
                   determinism *check*: its diff must be empty
``aes_latency``    crypto-engine OTP/pad latency in cycles
``hash_latency``   crypto-engine hashing latency in cycles
``seed``           workload generator seed
``scale``          workload scale factor
``fault``          inject a fault plan: ``kind`` or ``kind:trigger``
                   (kinds from repro.faults; replayed under the
                   rekey-replay recovery policy so the run completes
                   and the post-detection timeline is diffable)
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from ..errors import ConfigError
from .recording import Recording, record_run

#: perturbable knob names, CLI-visible
PERTURBATIONS = ("auth_interval", "masks", "engine", "aes_latency",
                 "hash_latency", "seed", "scale", "fault")

#: recovery policy fault replays run under (completes the run)
FAULT_REPLAY_POLICY = "rekey-replay"


def parse_perturbation(spec: str) -> Tuple[str, str]:
    """Split a ``name=value`` CLI spec; raises ConfigError on junk."""
    name, sep, value = spec.partition("=")
    name, value = name.strip(), value.strip()
    if not sep or not name or not value:
        raise ConfigError(
            f"perturbation must look like name=value, got {spec!r}")
    if name not in PERTURBATIONS:
        raise ConfigError(
            f"unknown perturbation {name!r}; choose from "
            f"{PERTURBATIONS}")
    return name, value


def _as_int(name: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ConfigError(
            f"perturbation {name} needs an integer, got {value!r}"
        ) from None


def _fault_plan(value: str, num_cpus: int):
    """``kind`` or ``kind:trigger`` -> a one-fault plan."""
    from ..faults.campaign import DEFAULT_TRIGGER, default_spec
    from ..faults.plan import FaultKind, FaultPlan
    kind, sep, trigger_text = value.partition(":")
    if kind not in FaultKind.ALL:
        raise ConfigError(
            f"unknown fault kind {kind!r}; choose from "
            f"{FaultKind.ALL}")
    trigger = _as_int("fault", trigger_text) if sep \
        else DEFAULT_TRIGGER[kind]
    return FaultPlan(specs=(default_spec(kind, num_cpus,
                                         trigger=trigger),))


def apply_perturbation(point, name: str, value: str):
    """Return ``(perturbed_point, fault_plan_or_None)``."""
    config = point.config
    if name == "auth_interval":
        return replace(point, config=config.with_auth_interval(
            _as_int(name, value))), None
    if name == "masks":
        masks = None if value.lower() in ("none", "perfect", "0") \
            else _as_int(name, value)
        return replace(point, config=config.with_masks(masks)), None
    if name == "engine":
        return replace(point, config=config.with_engine(value)), None
    if name == "aes_latency":
        crypto = replace(config.crypto,
                         aes_latency=_as_int(name, value))
        return replace(point, config=replace(config, crypto=crypto)), \
            None
    if name == "hash_latency":
        crypto = replace(config.crypto,
                         hash_latency=_as_int(name, value))
        return replace(point, config=replace(config, crypto=crypto)), \
            None
    if name == "seed":
        return replace(point, seed=_as_int(name, value)), None
    if name == "scale":
        try:
            scale = float(value)
        except ValueError:
            raise ConfigError(
                f"perturbation scale needs a number, got {value!r}"
            ) from None
        return replace(point, scale=scale), None
    if name == "fault":
        return point, _fault_plan(value, config.num_processors)
    raise ConfigError(f"unknown perturbation {name!r}")


def replay_recording(recording: Recording,
                     perturb: Optional[str] = None,
                     snapshot_every: Optional[int] = None
                     ) -> Recording:
    """Re-run a recording, optionally with one perturbed knob.

    With ``perturb=None`` the replay is a pure determinism check: its
    recording must diff empty against the source (pinned by
    tests/obs/test_replay_diff.py). The returned recording carries the
    perturbation label so a diff report can name what changed.
    """
    point = recording.point()
    fault_plan = None
    perturbation = None
    if perturb is not None:
        name, value = parse_perturbation(perturb)
        point, fault_plan = apply_perturbation(point, name, value)
        perturbation = {"name": name, "value": value}
    if snapshot_every is None:
        snapshot_every = recording.snapshot_every
    return record_run(point, snapshot_every=snapshot_every,
                      fault_plan=fault_plan,
                      fault_policy=FAULT_REPLAY_POLICY,
                      perturbation=perturbation)
