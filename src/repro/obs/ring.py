"""Columnar ring buffer of trace events.

Events are stored the same way :class:`~repro.smp.trace.ColumnarTrace`
stores accesses: one flat ``array('q')`` column per field instead of
one object per event, so a fully-instrumented miss-heavy run appends
machine integers only. The buffer is a *ring*: when ``capacity`` is
exceeded the oldest events are overwritten (and counted as dropped),
bounding tracer memory regardless of run length.

Every event is ``(kind, cycle, dur, cpu, a0, a1, a2)``; the meaning of
the ``a*`` payload words depends on ``kind`` (see
:class:`EventKind` and the packing notes in
:mod:`repro.obs.tracer`). Export to human-readable form happens once,
in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from array import array
from typing import Iterator, NamedTuple

from ..errors import ConfigError


class EventKind:
    """Integer codes for the ``kind`` column (stable, schema-visible)."""

    BUS_TX = 0        # one per granted bus transaction
    MISS = 1          # L2 miss serviced over the bus (latency span)
    UPGRADE = 2       # S->M upgrade (latency span)
    MASK_STALL = 3    # protected message waited for a mask slot
    AUTH_MAC = 4      # authentication checkpoint (MAC broadcast)
    PAD_HIT = 5       # pad/sequence-number cache hit
    PAD_MISS = 6      # pad/sequence-number cache miss
    HASH_VERIFY = 7   # integrity verification climb
    HASH_UPDATE = 8   # parent hash update after a dirty eviction
    RUN_SPAN = 9      # per-CPU execute span (emitted at run end)
    FAULT_INJECT = 10  # a planned fault fired (repro.faults)
    FAULT_DETECT = 11  # a defense mechanism caught an injected fault

    ALL = (BUS_TX, MISS, UPGRADE, MASK_STALL, AUTH_MAC, PAD_HIT,
           PAD_MISS, HASH_VERIFY, HASH_UPDATE, RUN_SPAN,
           FAULT_INJECT, FAULT_DETECT)


class TraceEvent(NamedTuple):
    kind: int
    cycle: int
    dur: int
    cpu: int
    a0: int
    a1: int
    a2: int


class EventRing:
    """Fixed-capacity columnar event store with overwrite-oldest."""

    __slots__ = ("capacity", "_total", "_kind", "_cycle", "_dur",
                 "_cpu", "_a0", "_a1", "_a2")

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ConfigError("event ring capacity must be >= 1")
        self.capacity = capacity
        self._total = 0
        zeros = array("q", [0]) * capacity
        self._kind = array("q", zeros)
        self._cycle = array("q", zeros)
        self._dur = array("q", zeros)
        self._cpu = array("q", zeros)
        self._a0 = array("q", zeros)
        self._a1 = array("q", zeros)
        self._a2 = array("q", zeros)

    def record(self, kind: int, cycle: int, dur: int, cpu: int,
               a0: int = 0, a1: int = 0, a2: int = 0) -> None:
        slot = self._total % self.capacity
        self._kind[slot] = kind
        self._cycle[slot] = cycle
        self._dur[slot] = dur
        self._cpu[slot] = cpu
        self._a0[slot] = a0
        self._a1[slot] = a1
        self._a2[slot] = a2
        self._total += 1

    # -- reading -------------------------------------------------------

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including overwritten ones."""
        return self._total

    @property
    def dropped(self) -> int:
        """Oldest events lost to ring wrap-around."""
        return max(0, self._total - self.capacity)

    def __len__(self) -> int:
        return min(self._total, self.capacity)

    def __iter__(self) -> Iterator[TraceEvent]:
        """Retained events, oldest first (recording order)."""
        total = self._total
        capacity = self.capacity
        for position in range(max(0, total - capacity), total):
            slot = position % capacity
            yield TraceEvent(self._kind[slot], self._cycle[slot],
                            self._dur[slot], self._cpu[slot],
                            self._a0[slot], self._a1[slot],
                            self._a2[slot])

    def counts_by_kind(self) -> dict:
        """``{kind_code: retained_count}`` over the current window."""
        counts: dict = {}
        for event in self:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self._total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventRing({len(self)}/{self.capacity} events, "
                f"{self.dropped} dropped)")


class EventLog:
    """Unbounded columnar event store (the recording backend).

    Same recording/reading surface as :class:`EventRing` but
    append-only and lossless: recordings (repro.obs.recording) must
    keep *every* event or the replay aligner would report ring
    wrap-around as divergence. Columns are the same ``array('q')``
    layout, so memory stays one machine word per field per event.
    """

    __slots__ = ("_kind", "_cycle", "_dur", "_cpu", "_a0", "_a1",
                 "_a2")

    #: mirror of EventRing.capacity for surface compatibility
    capacity = None

    def __init__(self):
        self._kind = array("q")
        self._cycle = array("q")
        self._dur = array("q")
        self._cpu = array("q")
        self._a0 = array("q")
        self._a1 = array("q")
        self._a2 = array("q")

    def record(self, kind: int, cycle: int, dur: int, cpu: int,
               a0: int = 0, a1: int = 0, a2: int = 0) -> None:
        self._kind.append(kind)
        self._cycle.append(cycle)
        self._dur.append(dur)
        self._cpu.append(cpu)
        self._a0.append(a0)
        self._a1.append(a1)
        self._a2.append(a2)

    @property
    def total_recorded(self) -> int:
        return len(self._kind)

    @property
    def dropped(self) -> int:
        return 0  # never drops; that is the point

    def __len__(self) -> int:
        return len(self._kind)

    def __iter__(self) -> Iterator[TraceEvent]:
        for position in range(len(self._kind)):
            yield TraceEvent(self._kind[position], self._cycle[position],
                            self._dur[position], self._cpu[position],
                            self._a0[position], self._a1[position],
                            self._a2[position])

    def counts_by_kind(self) -> dict:
        counts: dict = {}
        for kind in self._kind:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def columns(self) -> dict:
        """JSON-ready ``{column: [int, ...]}`` of every event."""
        return {"kind": list(self._kind), "cycle": list(self._cycle),
                "dur": list(self._dur), "cpu": list(self._cpu),
                "a0": list(self._a0), "a1": list(self._a1),
                "a2": list(self._a2)}

    def clear(self) -> None:
        self.__init__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLog({len(self)} events)"
