"""Run reports: one JSON-ready summary per simulated comparison.

``python -m repro report`` runs a workload on the insecure baseline
and the secured machine (with histogram metrics attached), then
condenses both into a *report dict* — headline paper metrics, latency
distributions, the load-bearing counters, and wall-clock phase
timings. Reports serialize to JSON so
``tools/collect_results.py --reports`` can merge many runs into one
table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..smp.metrics import (SimulationResult, slowdown_percent,
                           traffic_increase_percent)

#: report dict schema version (bump with any shape change)
#: Version history: 1 = initial shape; 2 = histogram summaries carry
#: p95 (additive — version-1 readers still parse version-2 reports).
REPORT_SCHEMA_VERSION = 2

#: counters surfaced in the report (absent counters are omitted)
KEY_COUNTERS = (
    "bus.transactions",
    "bus.cache_to_cache",
    "bus.with_memory",
    "bus.tx.Auth00",
    "coherence.invalidations",
    "coherence.writebacks",
    "senss.protected_messages",
    "senss.mask_stalls",
    "senss.mask_wait_cycles",
    "memprotect.pad_cache_hits",
    "memprotect.pad_cache_misses",
    "memprotect.hash_fetches",
    "memprotect.node_cache_hits",
)


def _config_block(result: SimulationResult) -> Dict[str, object]:
    hits = sum(value for name, value in result.stats.items()
               if name.endswith("l1_hit") or name.endswith("l2_hit"))
    slow = sum(value for name, value in result.stats.items()
               if name.endswith("l2_miss")
               or name.endswith("upgrade_needed"))
    block: Dict[str, object] = {
        "cycles": result.cycles,
        "per_cpu_cycles": list(result.per_cpu_cycles),
        "bus_transactions": result.total_bus_transactions,
        "cache_to_cache": result.cache_to_cache_transfers,
        "hit_rate": round(hits / (hits + slow), 6) if hits + slow
        else None,
        "counters": {name: result.stats[name] for name in KEY_COUNTERS
                     if name in result.stats},
    }
    return block


def build_report(baseline: SimulationResult,
                 secured: SimulationResult,
                 workload: str,
                 num_cpus: int,
                 scale: float,
                 histograms: Optional[Dict[str, dict]] = None,
                 timings: Optional[Dict[str, float]] = None,
                 engine_backend: Optional[str] = None
                 ) -> Dict[str, object]:
    """Assemble the mergeable report dict for one baseline/secured pair.

    ``engine_backend`` is the resolved backend the runs executed under
    (:attr:`SmpSystem.engine_backend`); when omitted it falls back to
    what ``auto`` resolves to right now.
    """
    from ..sim.sweep import ENGINE_VERSION
    from ..smp.engine import default_backend
    return {
        "kind": "repro-report",
        "schema_version": REPORT_SCHEMA_VERSION,
        "engine_version": ENGINE_VERSION,
        "engine_backend": engine_backend or default_backend(),
        "workload": workload,
        "num_cpus": num_cpus,
        "scale": scale,
        "slowdown_percent": round(slowdown_percent(baseline, secured), 4),
        "traffic_increase_percent": round(
            traffic_increase_percent(baseline, secured), 4),
        "configs": {
            "baseline": _config_block(baseline),
            "secured": _config_block(secured),
        },
        "histograms": histograms or {},
        "timings": timings or {},
    }


def format_report(report: Dict[str, object]) -> str:
    """Human-readable rendering of a report dict (CLI output)."""
    from ..analysis.report import format_table
    sections: List[str] = []

    headline = [
        ["workload", report["workload"]],
        ["cpus", report["num_cpus"]],
        ["scale", report["scale"]],
        ["engine backend", report.get("engine_backend", "?")],
        ["baseline cycles", f"{report['configs']['baseline']['cycles']:,}"],
        ["secured cycles", f"{report['configs']['secured']['cycles']:,}"],
        ["slowdown", f"{report['slowdown_percent']:+.3f}%"],
        ["traffic increase",
         f"{report['traffic_increase_percent']:+.3f}%"],
    ]
    sections.append(format_table("Run report", ["metric", "value"],
                                 headline))

    histograms = report.get("histograms") or {}
    if histograms:
        rows = [[name, summary["count"], summary["mean"],
                 summary["p50"], summary["p90"],
                 # version-1 reports predate p95
                 summary.get("p95", "-"), summary["p99"],
                 summary["max"]]
                for name, summary in sorted(histograms.items())]
        sections.append(format_table(
            "Latency / distribution metrics (cycles)",
            ["histogram", "count", "mean", "p50", "p90", "p95", "p99",
             "max"],
            rows))

    counters = report["configs"]["secured"].get("counters") or {}
    if counters:
        rows = [[name, f"{value:,}"]
                for name, value in sorted(counters.items())]
        sections.append(format_table("Secured-run counters",
                                     ["counter", "value"], rows))

    timings = report.get("timings") or {}
    if timings:
        rows = [[name, f"{seconds:.3f}"]
                for name, seconds in sorted(timings.items())]
        sections.append(format_table("Wall-clock phases (seconds)",
                                     ["phase", "seconds"], rows))
    return "\n\n".join(sections)
