"""Export a traced run as Chrome/Perfetto trace-event JSON.

The output is the Trace Event Format's "JSON object" flavour —
``{"traceEvents": [...], ...}`` — loadable directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``. Timestamps (``ts``)
and durations (``dur``) are **simulated CPU cycles** presented in the
format's microsecond field: one cycle renders as one microsecond, so
the timeline shape is exact and only the absolute unit label differs
(documented in docs/tracing.md).

Track layout: one process (pid 0, named after the workload) with one
thread per simulated CPU, so miss spans, bus grants and security
events line up per processor. Span events use phase ``"X"`` (complete
events); point-in-time events use phase ``"i"`` (instants,
thread-scoped).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..faults.plan import FaultKind
from ..faults.scoreboard import MECHANISMS
from .ring import EventKind, TraceEvent
from .tracer import (HASH_CLIPPED, HASH_FETCH, HASH_L2_HIT, HASH_ROOT,
                     HASH_WRITE, TX_TYPE_BY_INDEX, Tracer)

#: schema version stamped into ``otherData`` (bump with any shape change)
TRACE_SCHEMA_VERSION = 1

_VERIFY_OUTCOMES = {HASH_ROOT: "root", HASH_L2_HIT: "l2_hit",
                    HASH_FETCH: "fetch"}
_UPDATE_OUTCOMES = {HASH_ROOT: "root", HASH_WRITE: "write",
                    HASH_CLIPPED: "clipped"}
#: index -> name tables for the fault event payload words
_FAULT_KINDS = list(FaultKind.ALL)
_MECHANISMS = list(MECHANISMS)


def _span(name: str, cat: str, event: TraceEvent,
          args: Dict[str, object]) -> Dict[str, object]:
    return {"name": name, "cat": cat, "ph": "X", "ts": event.cycle,
            "dur": event.dur, "pid": 0, "tid": event.cpu, "args": args}


def _instant(name: str, cat: str, event: TraceEvent,
             args: Dict[str, object]) -> Dict[str, object]:
    return {"name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": event.cycle, "pid": 0, "tid": event.cpu,
            "args": args}


def _convert(event: TraceEvent) -> Dict[str, object]:
    kind = event.kind
    if kind == EventKind.BUS_TX:
        tx_type = TX_TYPE_BY_INDEX[event.a1]
        return _span(tx_type.value, "bus", event,
                     {"address": event.a0,
                      "cache_to_cache": bool(event.a2)})
    if kind == EventKind.MISS:
        supplier_word = event.a2 & 0xFF
        args = {"address": event.a0,
                "write": bool(event.a2 >> 9 & 1),
                "dirty_intervention": bool(event.a2 >> 8 & 1),
                "supplier": ("memory" if supplier_word == 0
                             else f"cpu{supplier_word - 1}")}
        if event.a1 >= 0:
            args["invalidated"] = event.a1
        return _span("miss", "mem", event, args)
    if kind == EventKind.UPGRADE:
        args: Dict[str, object] = {"address": event.a0}
        if event.a1 >= 0:
            args["invalidated"] = event.a1
        return _span("upgrade", "mem", event, args)
    if kind == EventKind.MASK_STALL:
        return _span("mask_stall", "senss", event,
                     {"group": event.a0, "wait_cycles": event.a1})
    if kind == EventKind.AUTH_MAC:
        args = {"group": event.a0}
        if event.a1 >= 0:
            args["gap_cycles"] = event.a1
        return _instant("auth_checkpoint", "senss", event, args)
    if kind == EventKind.PAD_HIT:
        args = {"address": event.a0}
        if event.a1 >= 0:
            args["reuse_distance"] = event.a1
        return _instant("pad_cache_hit", "memprotect", event, args)
    if kind == EventKind.PAD_MISS:
        return _instant("pad_cache_miss", "memprotect", event,
                        {"address": event.a0})
    if kind == EventKind.HASH_VERIFY:
        return _instant("hash_verify", "memprotect", event,
                        {"address": event.a0,
                         "outcome": _VERIFY_OUTCOMES[event.a1]})
    if kind == EventKind.HASH_UPDATE:
        return _instant("hash_update", "memprotect", event,
                        {"address": event.a0,
                         "outcome": _UPDATE_OUTCOMES[event.a1]})
    if kind == EventKind.RUN_SPAN:
        return _span("execute", "run", event, {})
    if kind == EventKind.FAULT_INJECT:
        args = {"kind": _FAULT_KINDS[event.a0]}
        if event.a1 >= 0:
            args["group"] = event.a1
        return _instant("fault_inject", "faults", event, args)
    if kind == EventKind.FAULT_DETECT:
        return _instant("fault_detect", "faults", event,
                        {"kind": _FAULT_KINDS[event.a0],
                         "mechanism": _MECHANISMS[event.a1],
                         "latency_cycles": event.a2})
    raise ValueError(f"unknown event kind {kind}")


def _metadata(workload: Optional[str],
              cpus) -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": f"senss-sim:{workload or 'run'}"}}]
    for cpu in sorted(cpus):
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": cpu, "args": {"name": f"cpu{cpu}"}})
    return events


def _backend_of(tracer) -> str:
    """The traced system's resolved engine backend (scalar/vector)."""
    system = getattr(tracer, "_system", None)
    backend = getattr(system, "engine_backend", None)
    if backend is not None:
        return backend
    from ..smp.engine import default_backend
    return default_backend()


def to_chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """The full trace-event JSON object for a traced run."""
    from ..sim.sweep import ENGINE_VERSION
    converted = [_convert(event) for event in tracer.ring]
    cpus = {event["tid"] for event in converted}
    payload = {
        "traceEvents": _metadata(tracer.workload_name, cpus) + converted,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TRACE_SCHEMA_VERSION,
            "engine_version": ENGINE_VERSION,
            "engine_backend": _backend_of(tracer),
            "workload": tracer.workload_name or "",
            "time_unit": "cpu_cycles_as_us",
            "events_recorded": tracer.ring.total_recorded,
            "events_dropped": tracer.ring.dropped,
        },
    }
    return payload
