"""Job wire format: requests, points and results as plain JSON.

A job request is::

    {"tenant": "alice",            # optional, default "default"
     "weight": 2,                  # optional fair-share weight, >= 1
     "record": true,               # optional: also keep a per-point
                                   # deterministic recording (needs
                                   # the server's --record-dir)
     "points": [                   # required, non-empty
        {"workload": "fft",        # required registry name
         "scale": 0.1,             # optional, default 1.0
         "seed": 0,                # optional, default 0
         "config": {...}}]}        # optional SystemConfig dict
                                   # (partial: omitted knobs default)

Config dicts are the :func:`repro.config.config_to_dict` shape and
may be partial — :func:`repro.config.config_from_dict` fills omitted
fields with defaults and rejects unknown names, so a typoed knob is a
400, never a silently different machine. Results travel as the same
payload shape :class:`~repro.sim.sweep.ResultCache` stores (minus the
checksum), so a streamed result round-trips losslessly into a
:class:`~repro.smp.metrics.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..config import SystemConfig, config_from_dict, config_to_dict
from ..errors import ConfigError, ServeError
from ..sim.sweep import SweepPoint
from ..smp.metrics import SimulationResult

#: tenant names are path/log-safe tokens
_TENANT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")
MAX_TENANT_LENGTH = 64
MAX_WEIGHT = 64
#: hard per-request size guard; the per-tenant backpressure budget
#: (Scheduler.max_queued_per_tenant) is the real admission control.
MAX_POINTS_PER_JOB = 4096


@dataclass(frozen=True)
class JobSpec:
    """A validated job submission: who, how urgent, what to run."""

    tenant: str
    weight: int
    points: Tuple[SweepPoint, ...]
    record: bool = False


def point_to_dict(point: SweepPoint) -> Dict[str, object]:
    return {"workload": point.workload,
            "scale": point.scale,
            "seed": point.seed,
            "config": config_to_dict(point.config)}


def point_from_dict(payload) -> SweepPoint:
    if not isinstance(payload, dict):
        raise ServeError(
            f"each point must be an object, got {type(payload).__name__}")
    unknown = set(payload) - {"workload", "scale", "seed", "config"}
    if unknown:
        raise ServeError(f"point has unknown fields {sorted(unknown)}")
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ServeError("point needs a workload name")
    scale = payload.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
            or not scale > 0:
        raise ServeError(f"point scale must be > 0, got {scale!r}")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ServeError(f"point seed must be an integer, got {seed!r}")
    config_payload = payload.get("config", {})
    try:
        config = config_from_dict(config_payload) \
            if config_payload else SystemConfig()
    except ConfigError as exc:
        raise ServeError(str(exc)) from None
    return SweepPoint(workload=workload, config=config,
                      scale=float(scale), seed=seed)


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    return {"workload": result.workload,
            "num_cpus": result.num_cpus,
            "cycles": result.cycles,
            "per_cpu_cycles": list(result.per_cpu_cycles),
            "stats": dict(result.stats)}


def result_from_dict(payload) -> Optional[SimulationResult]:
    if payload is None:
        return None
    return SimulationResult(workload=payload["workload"],
                            num_cpus=payload["num_cpus"],
                            cycles=payload["cycles"],
                            per_cpu_cycles=list(payload["per_cpu_cycles"]),
                            stats=dict(payload["stats"]))


def parse_job_request(payload) -> JobSpec:
    """Validate a submission body into a :class:`JobSpec` (400s on
    shape errors — the scheduler only ever sees well-formed jobs)."""
    if not isinstance(payload, dict):
        raise ServeError("job request must be a JSON object")
    unknown = set(payload) - {"tenant", "weight", "points", "record"}
    if unknown:
        raise ServeError(f"job has unknown fields {sorted(unknown)}")
    record = payload.get("record", False)
    if not isinstance(record, bool):
        raise ServeError(
            f"record must be a boolean, got {record!r}")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant \
            or len(tenant) > MAX_TENANT_LENGTH \
            or not set(tenant) <= _TENANT_CHARS:
        raise ServeError(
            "tenant must be 1-64 chars of [A-Za-z0-9._-], "
            f"got {tenant!r}")
    weight = payload.get("weight", 1)
    if not isinstance(weight, int) or isinstance(weight, bool) \
            or not 1 <= weight <= MAX_WEIGHT:
        raise ServeError(
            f"weight must be an integer in 1..{MAX_WEIGHT}, "
            f"got {weight!r}")
    raw_points = payload.get("points")
    if not isinstance(raw_points, list) or not raw_points:
        raise ServeError("job needs a non-empty points list")
    if len(raw_points) > MAX_POINTS_PER_JOB:
        raise ServeError(
            f"job exceeds {MAX_POINTS_PER_JOB} points per request")
    points = tuple(point_from_dict(raw) for raw in raw_points)
    return JobSpec(tenant=tenant, weight=weight, points=points,
                   record=record)


def job_request_dict(points, tenant: str = "default",
                     weight: int = 1,
                     record: bool = False) -> Dict[str, object]:
    """Client-side helper: SweepPoints -> submission body."""
    body: Dict[str, object] = {
        "tenant": tenant, "weight": weight,
        "points": [point_to_dict(point) for point in points]}
    if record:
        body["record"] = True
    return body
