"""The sweep-service scheduler: fair queue + warm pool + dedup.

One :class:`Scheduler` owns all the serving state and is driven
entirely from a single asyncio event loop:

- **admission** — :meth:`Scheduler.submit` validates the per-tenant
  queued-point budget (backpressure: a job that would exceed it is
  rejected whole with :class:`~repro.errors.BackpressureError`,
  HTTP 429) and enqueues every point on the weighted fair queue;
- **dispatch** — whenever a worker slot is free, the point from the
  lowest-virtual-time tenant is popped. Before costing a slot it is
  checked against the shared :class:`~repro.sim.sweep.ResultCache`
  (cross-job *and* cross-run reuse) and against the in-flight table
  keyed on :func:`~repro.sim.sweep.point_key` (two tenants asking for
  the same point share one execution — both get the result, and the
  bill for the slot is paid once);
- **execution** — points run on a **warm pool**: one
  ``ProcessPoolExecutor`` created at :meth:`start` and reused for the
  server's whole life, with warmup tasks that pre-import the
  simulator in every worker, so repeated sweeps never pay interpreter
  spawn + import + AES key-schedule startup again (the
  ``serving`` section of ``BENCH_engine.json`` measures the win);
- **completion** — results are stored in the cache (atomic publish;
  see ResultCache) and fanned out to every subscribed job; a job
  whose last point lands becomes ``done`` (or ``failed`` if any
  point errored).

Resilience (docs/resilience.md): the pool is owned by a
:class:`~repro.serve.supervisor.WorkerSupervisor` — a dead worker
(``BrokenProcessPool``) or a point past its ``point_timeout``
deadline triggers kill-and-respawn of the pool and the affected
points re-enter the fair queue with seeded exponential backoff +
jitter (``serve.retries``). A point that keeps failing is
**quarantined** after ``quarantine_after`` consecutive failures
(``serve.quarantined_points``): it fails fast with the recorded
error, poisoning neither its job's other points nor other tenants.
Every admission / dispatch / completion / failure is appended to the
:class:`~repro.serve.journal.JobJournal` WAL (when configured), so a
crashed server can :meth:`resume` incomplete jobs — completed points
short-circuit through the cache, only genuinely unfinished work
re-executes.

Cancellation (:meth:`cancel`) drops the job's *queued* points and
unsubscribes it from in-flight ones; an execution whose subscribers
all cancelled still runs to completion and its result is cached —
simulations are deterministic and paid-for work is worth keeping.
:meth:`drain` stops admission (503), waits for every accepted job to
reach a terminal state (up to an optional timeout — the journal
keeps whatever didn't finish), then shuts the pool down.

Progress is recorded per job as Chrome trace events (``cat:
"serve"``, validated against ``TRACE_EVENT_SCHEMA``) — the NDJSON
stream the HTTP layer serves is exactly this list.
"""

from __future__ import annotations

import asyncio
import functools
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..errors import BackpressureError, ServeError
from ..sim.sweep import ResultCache, SweepPoint, _recorded_runner, \
    _run_point_timed, point_key
from .fairqueue import WeightedFairQueue
from .jobs import JobSpec, job_request_dict, parse_job_request, \
    result_to_dict
from .journal import JobJournal
from .supervisor import WorkerSupervisor, _warm_worker  # noqa: F401
# (_warm_worker re-exported: it lived here before the supervisor
# split and external callers warm pools through it.)

#: job lifecycle states (terminal: done / failed / cancelled)
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class Job:
    """One accepted submission and everything observable about it."""

    def __init__(self, spec: JobSpec, serial: int):
        self.id = f"job-{serial:06d}"
        self.serial = serial
        self.spec = spec
        self.state = "queued"
        count = len(spec.points)
        self.results: List[Optional[dict]] = [None] * count
        self.errors: List[Optional[str]] = [None] * count
        self.pending = count
        self.created_s = time.time()
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self.events: List[dict] = []
        self.new_event = asyncio.Event()
        #: indexes failed by the poisoned-point circuit breaker
        self.quarantined_indexes: Set[int] = set()

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    @property
    def completed(self) -> int:
        return sum(1 for result in self.results if result is not None)

    def describe(self) -> dict:
        return {
            "id": self.id,
            "tenant": self.spec.tenant,
            "weight": self.spec.weight,
            "state": self.state,
            "points": len(self.spec.points),
            "completed": self.completed,
            "failed": sum(1 for error in self.errors
                          if error is not None),
            "quarantined": sorted(self.quarantined_indexes),
            "created_s": round(self.created_s, 3),
            "started_s": None if self.started_s is None
            else round(self.started_s, 3),
            "finished_s": None if self.finished_s is None
            else round(self.finished_s, 3),
        }


class _QueuedPoint:
    """One (job, point index) awaiting dispatch or an in-flight result."""

    __slots__ = ("job", "index", "point", "key")

    def __init__(self, job: Job, index: int, point: SweepPoint,
                 key: str):
        self.job = job
        self.index = index
        self.point = point
        self.key = key


class _Execution:
    """One running point and the (job, index) pairs wanting its result."""

    __slots__ = ("key", "point", "subscribers", "started_us",
                 "settled")

    def __init__(self, key: str, point: SweepPoint, started_us: int):
        self.key = key
        self.point = point
        self.subscribers: Set[Tuple[Job, int]] = set()
        self.started_us = started_us
        # An execution settles exactly once: either its future
        # completes or the watchdog declares it timed out —
        # whichever comes second is ignored (the slot was already
        # refunded, the subscribers already routed).
        self.settled = False

    @property
    def base_key(self) -> str:
        return self.key[:-4] if self.key.endswith(":rec") else self.key


class Scheduler:
    """Fair-queued, deduplicating, self-healing executor of sweep jobs.

    ``executor``/``runner`` are injectable for tests (a thread pool
    plus a controllable runner gives deterministic contention); the
    production path is a warm ``ProcessPoolExecutor`` running
    :func:`repro.sim.sweep._run_point_timed` under worker
    supervision. ``journal`` (a :class:`JobJournal` or a path) turns
    on the durable WAL; ``point_timeout`` arms the per-point
    deadline; ``retries``/``backoff_s``/``seed`` shape the seeded
    retry schedule and ``quarantine_after`` the circuit breaker.
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 max_workers: int = 2,
                 max_queued_per_tenant: int = 1024,
                 executor=None, runner=None, warmup: bool = True,
                 record_dir: Optional[Union[str, Path]] = None,
                 record_runner=None,
                 journal: Optional[Union[JobJournal, str, Path]] = None,
                 point_timeout: Optional[float] = None,
                 retries: int = 2, backoff_s: float = 0.05,
                 seed: int = 0, quarantine_after: int = 5,
                 executor_factory=None, heartbeat_s: float = 0.1,
                 checkpoint_dir: Optional[Union[str, Path]] = None,
                 checkpoint_hot: int = 8):
        self.cache = cache
        self.record_dir = None if record_dir is None else Path(record_dir)
        self.checkpoint_dir = None if checkpoint_dir is None \
            else Path(checkpoint_dir)
        if record_runner is not None:
            self._record_runner = record_runner
        elif record_dir is not None:
            self._record_runner = functools.partial(
                _recorded_runner, str(record_dir))
        else:
            self._record_runner = None
        self.max_workers = max(1, max_workers)
        self.max_queued_per_tenant = max_queued_per_tenant
        if journal is None or isinstance(journal, JobJournal):
            self.journal = journal
        else:
            self.journal = JobJournal(journal)
        self.point_timeout = point_timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.seed = seed
        self.quarantine_after = max(1, quarantine_after)
        self.queue = WeightedFairQueue()
        self.jobs: Dict[str, Job] = {}
        self._order: List[Job] = []
        self._inflight: Dict[str, _Execution] = {}
        self._supervisor = WorkerSupervisor(
            max_workers=self.max_workers, warmup=warmup,
            executor=executor, executor_factory=executor_factory,
            heartbeat_s=heartbeat_s)
        self._supervisor.on_restart = self._on_worker_restart
        if runner is not None:
            self._runner = runner
        elif checkpoint_dir is not None:
            # Prefix-sharing execution (docs/checkpointing.md): the
            # worker probes its in-process hot LRU, then the shared
            # disk store, and forks instead of re-simulating warm-up.
            # Checkpoints are keyed by prefix fingerprint, not tenant,
            # so they are shared across tenants like the result cache.
            from ..sim.checkpoint import serve_checkpoint_runner
            self._runner = functools.partial(
                serve_checkpoint_runner, str(checkpoint_dir),
                max(1, checkpoint_hot))
        else:
            self._runner = _run_point_timed
        self._running = 0
        self._serial = 0
        self._draining = False
        #: consecutive failures per point key (reset on success)
        self._failures: Dict[str, int] = {}
        #: quarantined point key -> the final error served for it
        self.quarantined: Dict[str, str] = {}
        self._retry_handles: Set[asyncio.TimerHandle] = set()
        self._pending_retries = 0
        # Created lazily inside the running loop: on Python 3.9 an
        # Event built before asyncio.run() binds to the wrong loop.
        self._idle: Optional[asyncio.Event] = None
        self._start_monotonic = time.monotonic()
        self.counters = {
            "serve.jobs_accepted": 0,
            "serve.jobs_rejected": 0,
            "serve.jobs_completed": 0,
            "serve.jobs_failed": 0,
            "serve.jobs_cancelled": 0,
            "serve.points_executed": 0,
            "serve.points_cache_hits": 0,
            "serve.points_deduped": 0,
            "serve.points_failed": 0,
            "serve.recordings_written": 0,
            "serve.retries": 0,
            "serve.worker_restarts": 0,
            "serve.journal_replays": 0,
            "serve.quarantined_points": 0,
            "serve.checkpoint_hits": 0,
            "serve.checkpoint_misses": 0,
            "serve.checkpoint_stores": 0,
        }
        #: per-tenant completed/failed point totals (metrics plane)
        self.tenant_counters: Dict[str, Dict[str, int]] = {}

    # -- lifecycle -----------------------------------------------------

    @property
    def supervisor(self) -> WorkerSupervisor:
        return self._supervisor

    async def start(self) -> "Scheduler":
        """Create (and warm) the worker pool; returns self."""
        await self._supervisor.start()
        return self

    def resume(self) -> List[Job]:
        """Replay the journal: re-admit every job that never reached
        a terminal state before the last shutdown/crash.

        Each resumed job keeps its original id and is re-journalled
        into the (rotated-fresh) WAL, so a second crash still
        recovers. Its points re-enter the fair queue where completed
        ones short-circuit through the shared cache — only work that
        genuinely never finished re-executes. Admission control is
        bypassed: this work was already accepted once.
        """
        if self.journal is None:
            return []
        resumed: List[Job] = []
        for entry in self.journal.replay_and_rotate():
            if not entry.incomplete:
                continue
            try:
                spec = parse_job_request(entry.payload)
            except ServeError:
                continue  # journalled by a different schema; skip
            job = self._admit(spec, job_id=entry.job_id)
            self.counters["serve.journal_replays"] += 1
            self._emit(job, "job_resumed", "i",
                       {"job": job.id, "points": len(spec.points)})
            resumed.append(job)
        return resumed

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, wait for accepted work, stop the pool.

        With a ``timeout``, gives up waiting after that many seconds
        and returns False — incomplete jobs stay in the journal for
        a later ``--resume`` (drain-under-fire: a hung worker must
        not hold shutdown hostage).
        """
        self._draining = True
        drained = True
        try:
            if timeout is None:
                await self._idle_event().wait()
            else:
                await asyncio.wait_for(
                    self._idle_event().wait(), timeout)
        except asyncio.TimeoutError:
            drained = False
        for handle in list(self._retry_handles):
            handle.cancel()
        self._retry_handles.clear()
        self._pending_retries = 0
        self._supervisor.stop()
        if self.journal is not None:
            self.journal.close()
        return drained

    def _is_idle(self) -> bool:
        return not self.queue and not self._inflight and \
            self._pending_retries == 0 and \
            all(job.terminal for job in self._order)

    def _idle_event(self) -> asyncio.Event:
        if self._idle is None:
            self._idle = asyncio.Event()
            if self._is_idle():
                self._idle.set()
        return self._idle

    # -- admission -----------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit a job whole or reject it whole (backpressure)."""
        if self._draining:
            self.counters["serve.jobs_rejected"] += 1
            raise ServeError("server is draining", status=503)
        if spec.record and self._record_runner is None:
            self.counters["serve.jobs_rejected"] += 1
            raise ServeError(
                "job requests recordings but the server has no "
                "record directory (start with --record-dir)",
                status=400)
        queued = self.queue.depth(spec.tenant)
        budget = self.max_queued_per_tenant
        if queued + len(spec.points) > budget:
            self.counters["serve.jobs_rejected"] += 1
            raise BackpressureError(
                f"tenant {spec.tenant!r} has {queued} points queued; "
                f"admitting {len(spec.points)} more would exceed the "
                f"budget of {budget}")
        return self._admit(spec)

    def _admit(self, spec: JobSpec,
               job_id: Optional[str] = None) -> Job:
        """Enqueue a validated job (fresh serial, or a resumed job's
        original id — the serial counter advances past it either way
        so ids never collide)."""
        if job_id is None:
            self._serial += 1
            serial = self._serial
        else:
            serial = int(job_id.rsplit("-", 1)[1])
            self._serial = max(self._serial, serial)
        job = Job(spec, serial)
        self.jobs[job.id] = job
        self._order.append(job)
        self.counters["serve.jobs_accepted"] += 1
        if self.journal is not None:
            self.journal.job_submitted(job.id, job_request_dict(
                spec.points, tenant=spec.tenant, weight=spec.weight,
                record=spec.record))
        if self._idle is not None:
            self._idle.clear()
        self._emit(job, "job_accepted", "i",
                   {"job": job.id, "tenant": spec.tenant,
                    "points": len(spec.points)})
        for index, point in enumerate(spec.points):
            self.queue.push(spec.tenant,
                            _QueuedPoint(job, index, point,
                                         point_key(point)),
                            weight=spec.weight)
        self._pump()
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: drop its queued points, unsubscribe it from
        shared executions (which run on — results are still cached)."""
        job = self.get(job_id)
        if job.terminal:
            return job
        self.queue.remove(lambda queued: queued.job is job)
        for execution in self._inflight.values():
            execution.subscribers = {
                (subscriber, index)
                for subscriber, index in execution.subscribers
                if subscriber is not job}
        self.counters["serve.jobs_cancelled"] += 1
        if self.journal is not None:
            self.journal.job_cancelled(job.id)
        self._finish_job(job, "cancelled")
        return job

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServeError(f"no such job: {job_id}", status=404)
        return job

    def list_jobs(self, tenant: Optional[str] = None) -> List[Job]:
        return [job for job in self._order
                if tenant is None or job.spec.tenant == tenant]

    # -- dispatch ------------------------------------------------------

    def _pump(self) -> None:
        """Dispatch queued points while worker slots are free.

        Cache hits, dedup attaches and quarantine fast-fails consume
        no slot, so one pump call drains any run of free work before
        blocking on capacity.
        """
        while self.queue and self._running < self.max_workers:
            tenant, queued = self.queue.pop()
            job = queued.job
            if job.terminal:
                continue  # cancelled between push and pop
            if job.state == "queued":
                job.state = "running"
                job.started_s = time.time()
            # Circuit breaker: a quarantined point fails fast with
            # its recorded error — no slot, no worker risk.
            if queued.key in self.quarantined:
                self.counters["serve.points_failed"] += 1
                self._fail_point(job, queued.index,
                                 self.quarantined[queued.key],
                                 quarantined=True)
                continue
            # Record-requesting points execute under a distinct key:
            # they must not attach to a plain execution (it would
            # leave no recording artifact behind).
            recording = job.spec.record
            exec_key = queued.key + ":rec" if recording else queued.key
            execution = self._inflight.get(exec_key)
            if execution is not None:
                self.counters["serve.points_deduped"] += 1
                execution.subscribers.add((job, queued.index))
                continue
            cached = self.cache.load(queued.point) \
                if self.cache is not None else None
            # A cache hit satisfies a record point only when its
            # recording artifact already exists (recordings are
            # content-addressed by the same key, so reuse is sound).
            if cached is not None and (
                    not recording
                    or self._recording_path(queued.key).is_file()):
                self.counters["serve.points_cache_hits"] += 1
                self._complete_point(job, queued.index,
                                     result_to_dict(cached),
                                     source="cache", dur_us=0)
                continue
            execution = _Execution(exec_key, queued.point,
                                   self._now_us())
            execution.subscribers.add((job, queued.index))
            self._inflight[exec_key] = execution
            self._running += 1
            if self.journal is not None:
                self.journal.point_started(
                    job.id, queued.index, queued.key,
                    self._failures.get(queued.key, 0) + 1)
            runner = self._record_runner if recording else self._runner
            future = self._supervisor.submit(
                runner, queued.point, deadline_s=self.point_timeout,
                on_timeout=functools.partial(
                    self._on_execution_timeout, execution))
            future.add_done_callback(
                lambda done, execution=execution:
                self._on_execution_done(execution, done))

    def _retire(self, execution: _Execution) -> None:
        """Refund the slot and drop the in-flight entry — once."""
        execution.settled = True
        self._running -= 1
        self._inflight.pop(execution.key, None)

    def _on_execution_timeout(self, execution: _Execution) -> None:
        """Watchdog verdict: the point blew its deadline. The worker
        under it is presumed hung, so the whole pool is killed and
        respawned (a hung process future can never complete); other
        in-flight points die with it and take the retry path as
        worker-loss failures."""
        if execution.settled:
            return
        self._retire(execution)
        error = ("TimeoutError: point exceeded the "
                 f"{self.point_timeout}s deadline")
        self._supervisor.restart(reason="point deadline exceeded",
                                 force=True)
        self._route_failure(execution, error)
        self._pump()
        self._check_idle()

    def _on_execution_done(self, execution: _Execution,
                           future) -> None:
        if execution.settled:
            # Timed out earlier; the slot is already refunded and the
            # subscribers rerouted. A straggler result that still
            # made it out of the dying pool is worth caching — the
            # retry then lands as a cache hit.
            try:
                result, _seconds, *extra = future.result()
            except BaseException:
                return
            self._merge_worker_counters(extra)
            if self.cache is not None:
                self.cache.store(execution.point, result)
            return
        self._retire(execution)
        dur_us = self._now_us() - execution.started_us
        try:
            result, _seconds, *extra = future.result()
        except BaseException as exc:
            # BrokenProcessPool (worker died) and CancelledError
            # (pool torn down under this future) mean worker loss,
            # not a bad point — restart the pool (idempotent: only a
            # genuinely broken pool is replaced) and retry.
            if isinstance(exc, asyncio.CancelledError):
                error = "CancelledError: worker pool restarted"
                self._supervisor.restart(reason="execution cancelled")
            else:
                error = f"{type(exc).__name__}: {exc}"
                self._supervisor.restart(reason=error)
            self._route_failure(execution, error)
        else:
            self.counters["serve.points_executed"] += 1
            self._merge_worker_counters(extra)
            self._failures.pop(execution.base_key, None)
            if execution.key.endswith(":rec"):
                self.counters["serve.recordings_written"] += 1
            if self.cache is not None:
                self.cache.store(execution.point, result)
            payload = result_to_dict(result)
            for position, (job, index) in enumerate(sorted(
                    execution.subscribers,
                    key=lambda s: (s[0].serial, s[1]))):
                self._complete_point(
                    job, index, payload,
                    source="executed" if position == 0 else "dedup",
                    dur_us=dur_us)
        self._pump()
        self._check_idle()

    def _merge_worker_counters(self, extra) -> None:
        """Fold counter deltas a runner shipped back alongside its
        result (third tuple element, e.g. ``serve.checkpoint_*`` from
        :func:`repro.sim.checkpoint.serve_checkpoint_runner`) into the
        scheduler's counters. Plain two-tuple runners ship none."""
        for delta in extra:
            if not isinstance(delta, dict):
                continue
            for name, value in delta.items():
                self.counters[name] = \
                    self.counters.get(name, 0) + int(value)

    # -- retry / quarantine policy -------------------------------------

    def _route_failure(self, execution: _Execution,
                       error: str) -> None:
        """Decide what a failed execution means for its subscribers:
        quarantine the point, schedule a retry, or fail it for good."""
        key = execution.base_key
        self._failures[key] = self._failures.get(key, 0) + 1
        failures = self._failures[key]
        live = [(job, index) for job, index in sorted(
                    execution.subscribers,
                    key=lambda s: (s[0].serial, s[1]))
                if not job.terminal
                and job.results[index] is None
                and job.errors[index] is None]
        if failures >= self.quarantine_after:
            final = (f"quarantined after {failures} failed "
                     f"attempts: {error}")
            self.quarantined[key] = final
            self.counters["serve.quarantined_points"] += 1
            self.counters["serve.points_failed"] += 1
            for job, index in live:
                self._fail_point(job, index, final, quarantined=True)
        elif failures <= self.retries and live:
            self.counters["serve.retries"] += 1
            attempt = failures + 1
            for job, index in live:
                self._emit(job, "point_retry", "i",
                           {"index": index, "attempt": attempt,
                            "error": error}, tid=index)
                if self.journal is not None:
                    self.journal.point_retry(job.id, index, attempt,
                                             error)
            self._schedule_retry(execution, live)
        else:
            self.counters["serve.points_failed"] += 1
            for job, index in live:
                self._fail_point(job, index, error)

    def _backoff_delay(self, key: str, failures: int) -> float:
        """Exponential backoff with seeded jitter: deterministic for
        a given (scheduler seed, point, attempt), decorrelated across
        points so a mass worker loss doesn't thunder back as one
        herd."""
        rng = random.Random(f"{self.seed}:{key}:{failures}")
        return self.backoff_s * (2 ** (failures - 1)) \
            * (1.0 + rng.random())

    def _schedule_retry(self, execution: _Execution,
                        pairs: List[Tuple[Job, int]]) -> None:
        delay = self._backoff_delay(execution.base_key,
                                    self._failures[execution.base_key])
        loop = asyncio.get_running_loop()
        self._pending_retries += 1
        handle_box: List[asyncio.TimerHandle] = []

        def fire() -> None:
            self._pending_retries -= 1
            if handle_box:
                self._retry_handles.discard(handle_box[0])
            for job, index in pairs:
                if job.terminal:
                    continue
                self.queue.push_front(
                    job.spec.tenant,
                    _QueuedPoint(job, index, execution.point,
                                 execution.base_key),
                    weight=job.spec.weight)
            self._pump()
            self._check_idle()

        handle = loop.call_later(delay, fire)
        handle_box.append(handle)
        self._retry_handles.add(handle)

    def _on_worker_restart(self, reason: str) -> None:
        self.counters["serve.worker_restarts"] += 1

    # -- point / job completion ----------------------------------------

    def _complete_point(self, job: Job, index: int, payload: dict,
                        source: str, dur_us: int) -> None:
        if job.terminal or job.results[index] is not None:
            return
        job.results[index] = payload
        job.pending -= 1
        self._tenant_entry(job.spec.tenant)["completed"] += 1
        if self.journal is not None:
            self.journal.point_done(job.id, index, source)
        self._emit(job, "point_done", "X",
                   {"index": index, "cycles": payload["cycles"],
                    "source": source},
                   dur_us=dur_us, tid=index)
        if job.pending == 0:
            self._finish_job(
                job, "failed" if any(error is not None
                                     for error in job.errors)
                else "done")

    def _fail_point(self, job: Job, index: int, error: str,
                    quarantined: bool = False) -> None:
        if job.terminal or job.errors[index] is not None:
            return
        job.errors[index] = error
        job.pending -= 1
        if quarantined:
            job.quarantined_indexes.add(index)
        self._tenant_entry(job.spec.tenant)["failed"] += 1
        if self.journal is not None:
            self.journal.point_failed(job.id, index, error,
                                      quarantined=quarantined)
        self._emit(job, "point_failed", "i",
                   {"index": index, "error": error,
                    "quarantined": quarantined}, tid=index)
        if job.pending == 0:
            self._finish_job(job, "failed")

    def _finish_job(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_s = time.time()
        if state == "done":
            self.counters["serve.jobs_completed"] += 1
        elif state == "failed":
            self.counters["serve.jobs_failed"] += 1
        if self.journal is not None:
            self.journal.job_done(job.id, state)
        # Counter sample right before the terminal event, so a
        # Perfetto load of the job's stream shows the server-wide
        # serve.* counters at the moment the job finished (job_done
        # stays the stream's last event — pinned by tests).
        self._emit(job, "serve.counters", "C", {
            "queue_depth": len(self.queue),
            "inflight": len(self._inflight),
            "executed": self.counters["serve.points_executed"],
            "cache_hits": self.counters["serve.points_cache_hits"],
            "deduped": self.counters["serve.points_deduped"],
            "failed": self.counters["serve.points_failed"],
            "retries": self.counters["serve.retries"],
            "worker_restarts": self.counters["serve.worker_restarts"],
            "quarantined": self.counters["serve.quarantined_points"],
            "checkpoint_hits": self.counters["serve.checkpoint_hits"],
            "checkpoint_stores":
                self.counters["serve.checkpoint_stores"],
        })
        self._emit(job, "job_done", "i",
                   {"job": job.id, "state": state})
        self._check_idle()

    def _check_idle(self) -> None:
        if self._idle is not None and self._is_idle():
            self._idle.set()

    # -- progress events -----------------------------------------------

    def _now_us(self) -> int:
        return int((time.monotonic() - self._start_monotonic) * 1e6)

    def _emit(self, job: Job, name: str, phase: str, args: dict,
              dur_us: int = 0, tid: int = 0) -> None:
        event = {"name": name, "cat": "serve", "ph": phase,
                 "ts": self._now_us(), "pid": job.serial, "tid": tid,
                 "args": args}
        if phase == "X":
            event["dur"] = max(0, dur_us)
        elif phase == "i":
            event["s"] = "p"
        job.events.append(event)
        job.new_event.set()

    # -- recordings ----------------------------------------------------

    def _recording_path(self, key: str) -> Path:
        return self.record_dir / f"{key}.rec.json"

    def recording_path(self, job_id: str, index: int) -> Path:
        """The on-disk recording for one point of a record job; 404s
        (ServeError) when the job didn't record, the index is out of
        range, or the artifact isn't written yet."""
        job = self.get(job_id)
        if not job.spec.record or self.record_dir is None:
            raise ServeError(
                f"job {job_id} did not request recordings", status=404)
        if not 0 <= index < len(job.spec.points):
            raise ServeError(
                f"job {job_id} has no point {index}", status=404)
        path = self._recording_path(point_key(job.spec.points[index]))
        if not path.is_file():
            raise ServeError(
                f"recording for job {job_id} point {index} is not "
                "available yet", status=404)
        return path

    # -- observability -------------------------------------------------

    def ready(self) -> Tuple[bool, str]:
        """Readiness verdict for ``/v1/readyz``: can this server
        accept and run a job right now?"""
        if self._draining:
            return False, "draining"
        if self._supervisor.executor is None:
            return False, "worker pool not started"
        if not self._supervisor.alive:
            return False, "worker pool broken"
        return True, "ok"

    def _tenant_entry(self, tenant: str) -> Dict[str, int]:
        return self.tenant_counters.setdefault(
            tenant, {"completed": 0, "failed": 0})

    def metrics(self) -> dict:
        """The ``/v1/metrics`` payload (docs/serving.md documents the
        schema): queue depth, worker/warm-pool state, cache hit rate,
        per-tenant queue depth and throughput, recording plane, and
        the resilience plane (journal / retries / quarantine)."""
        uptime_s = time.monotonic() - self._start_monotonic
        hits = self.counters["serve.points_cache_hits"]
        executed = self.counters["serve.points_executed"]
        lookups = hits + executed
        ckpt_hits = self.counters["serve.checkpoint_hits"]
        ckpt_misses = self.counters["serve.checkpoint_misses"]
        ckpt_probes = ckpt_hits + ckpt_misses
        depths = self.queue.depths()
        tenants = {}
        for tenant in sorted(set(depths) | set(self.tenant_counters)):
            entry = self.tenant_counters.get(
                tenant, {"completed": 0, "failed": 0})
            tenants[tenant] = {
                "queued": depths.get(tenant, 0),
                "completed": entry["completed"],
                "failed": entry["failed"],
                "throughput_per_s": round(
                    entry["completed"] / uptime_s, 6)
                if uptime_s > 0 else 0.0,
            }
        return {
            "schema_version": 3,
            "uptime_s": round(uptime_s, 3),
            "draining": self._draining,
            "queue": {
                "depth": len(self.queue),
                "per_tenant": depths,
            },
            "workers": {
                "max": self.max_workers,
                "busy": self._running,
                "inflight": len(self._inflight),
                "warm": self._supervisor.executor is not None,
            },
            "cache": {
                "enabled": self.cache is not None,
                "hits": hits,
                "executed": executed,
                "hit_rate": round(hits / lookups, 6) if lookups else 0.0,
            },
            "recordings": {
                "enabled": self._record_runner is not None,
                "written": self.counters["serve.recordings_written"],
            },
            "checkpoints": {
                "enabled": self.checkpoint_dir is not None,
                "dir": None if self.checkpoint_dir is None
                else str(self.checkpoint_dir),
                "hits": ckpt_hits,
                "misses": ckpt_misses,
                "stores": self.counters["serve.checkpoint_stores"],
                "hit_rate": round(ckpt_hits / ckpt_probes, 6)
                if ckpt_probes else 0.0,
            },
            "resilience": {
                "journal": {
                    "enabled": self.journal is not None,
                    "path": None if self.journal is None
                    else str(self.journal.path),
                    "records": 0 if self.journal is None
                    else self.journal.records_written,
                },
                "point_timeout_s": self.point_timeout,
                "retries": self.counters["serve.retries"],
                "pending_retries": self._pending_retries,
                "worker_restarts":
                    self.counters["serve.worker_restarts"],
                "journal_replays":
                    self.counters["serve.journal_replays"],
                "quarantined_points": sorted(self.quarantined),
                "supervisor": self._supervisor.describe(),
            },
            "tenants": tenants,
            "counters": dict(self.counters),
        }

    def stats(self) -> dict:
        """Counters plus live gauges (the ``/v1/stats`` payload)."""
        payload = dict(self.counters)
        payload.update({
            "serve.queue_depth": len(self.queue),
            "serve.inflight": len(self._inflight),
            "serve.active_jobs": sum(
                1 for job in self._order if not job.terminal),
            "serve.workers": self.max_workers,
            "serve.draining": self._draining,
            "serve.pending_retries": self._pending_retries,
            "serve.pool_alive": self._supervisor.alive,
            "serve.uptime_s": round(
                time.monotonic() - self._start_monotonic, 3),
            "serve.tenants": self.queue.depths(),
        })
        return payload
