"""The asyncio HTTP/1.1 front end of the sweep service.

Hand-rolled on ``asyncio.start_server`` so the repo stays
stdlib-only: one connection carries one request, every response is
``Connection: close`` delimited, and the progress stream is NDJSON
(one JSON trace event per line) written as results land. That is the
simplest protocol that curl, the bundled :class:`ServeClient` and a
browser's ``fetch`` can all consume without a framework.

Endpoints (all under ``/v1``)::

    GET    /v1/healthz            liveness ("ok", never queued)
    GET    /v1/readyz             readiness (200 only when the server
                                  is admitting work and its pool is
                                  alive; 503 with a reason otherwise)
    GET    /v1/stats              scheduler counters + gauges
    GET    /v1/metrics            live metrics plane: queue depth,
                                  warm-pool state, cache hit rate,
                                  per-tenant throughput (JSON schema
                                  in docs/serving.md)
    POST   /v1/jobs               submit a job (201 / 400 / 429 / 503)
    GET    /v1/jobs[?tenant=t]    job summaries
    GET    /v1/jobs/{id}          one job summary
    GET    /v1/jobs/{id}/results  results + errors snapshot
    GET    /v1/jobs/{id}/events   NDJSON progress stream (replays the
                                  job's history, then follows live
                                  until the job is terminal)
    GET    /v1/jobs/{id}/recordings/{index}
                                  the point's deterministic recording
                                  (jobs submitted with "record": true
                                  on a server with --record-dir)
    DELETE /v1/jobs/{id}          cancel

Errors are JSON bodies ``{"error": message}`` with the status carried
by :class:`~repro.errors.ServeError` (429 = per-tenant backpressure,
503 = draining). The request line, headers and body are size-capped;
anything malformed is a 400, never an exception escaping the handler.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from ..errors import ReproError, ServeError
from .jobs import parse_job_request
from .scheduler import Scheduler

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class _BadRequest(ServeError):
    pass


async def _read_request(reader) -> Tuple[str, str, Dict[str, str],
                                         bytes]:
    """Parse one request: (method, path, headers, body)."""
    line = await reader.readline()
    if not line:
        raise ConnectionResetError("client closed before a request")
    if len(line) > MAX_REQUEST_LINE:
        raise _BadRequest("request line too long", status=400)
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(f"malformed request line: {line!r}",
                          status=400)
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise _BadRequest("headers too large", status=400)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise _BadRequest("bad Content-Length", status=400) \
                from None
        if size > MAX_BODY_BYTES:
            raise _BadRequest("request body too large", status=413)
        body = await reader.readexactly(size)
    return method, path, headers, body


def _response_head(status: int, content_type: str,
                   length: Optional[int]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class ServeHTTP:
    """One scheduler behind one listening socket."""

    def __init__(self, scheduler: Scheduler,
                 host: str = "127.0.0.1", port: int = 0):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "ServeHTTP":
        """Bind and start serving; ``self.port`` is the bound port
        (useful with ``port=0`` in tests)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop listening, let the scheduler
        finish every accepted job (up to ``timeout`` seconds — the
        journal keeps whatever didn't make it), then stop the pool.
        Returns True when everything finished in time."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        return await self.scheduler.drain(timeout=timeout)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling -------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                method, path, _headers, body = \
                    await _read_request(reader)
            except (ConnectionResetError, asyncio.IncompleteReadError):
                return
            try:
                await self._route(method, path, body, writer)
            except ServeError as exc:
                await self._send_json(writer, exc.status,
                                      {"error": str(exc)})
            except ReproError as exc:
                await self._send_json(writer, 400,
                                      {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 - boundary
                await self._send_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"})
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer) -> None:
        path, _, query = path.partition("?")
        segments = [seg for seg in path.split("/") if seg]
        if segments[:1] != ["v1"]:
            raise ServeError(f"unknown path {path!r}", status=404)
        rest = segments[1:]
        if rest == ["healthz"] and method == "GET":
            await self._send_json(writer, 200, {"status": "ok"})
            return
        if rest == ["readyz"] and method == "GET":
            ready, reason = self.scheduler.ready()
            await self._send_json(
                writer, 200 if ready else 503,
                {"ready": ready, "reason": reason})
            return
        if rest == ["stats"] and method == "GET":
            await self._send_json(writer, 200,
                                  self.scheduler.stats())
            return
        if rest == ["metrics"] and method == "GET":
            await self._send_json(writer, 200,
                                  self.scheduler.metrics())
            return
        if rest == ["jobs"]:
            if method == "POST":
                await self._submit(body, writer)
                return
            if method == "GET":
                tenant = _query_param(query, "tenant")
                await self._send_json(writer, 200, {
                    "jobs": [job.describe() for job in
                             self.scheduler.list_jobs(tenant)]})
                return
            raise ServeError("method not allowed", status=405)
        if len(rest) >= 2 and rest[0] == "jobs":
            job_id = rest[1]
            tail = rest[2:]
            if not tail and method == "GET":
                job = self.scheduler.get(job_id)
                await self._send_json(writer, 200, job.describe())
                return
            if not tail and method == "DELETE":
                job = self.scheduler.cancel(job_id)
                await self._send_json(writer, 200, job.describe())
                return
            if tail == ["results"] and method == "GET":
                job = self.scheduler.get(job_id)
                await self._send_json(writer, 200, {
                    "job": job.describe(),
                    "results": job.results,
                    "errors": job.errors})
                return
            if tail == ["events"] and method == "GET":
                await self._stream_events(job_id, writer)
                return
            if len(tail) == 2 and tail[0] == "recordings" \
                    and method == "GET":
                try:
                    index = int(tail[1])
                except ValueError:
                    raise ServeError(
                        f"bad recording index {tail[1]!r}",
                        status=404) from None
                await self._send_recording(job_id, index, writer)
                return
        raise ServeError(f"unknown path {path!r}", status=404)

    async def _submit(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServeError("request body is not valid JSON",
                             status=400) from None
        spec = parse_job_request(payload)
        job = self.scheduler.submit(spec)
        await self._send_json(writer, 201, job.describe())

    async def _stream_events(self, job_id: str, writer) -> None:
        """Replay the job's trace events, then follow live as NDJSON
        until the job reaches a terminal state."""
        job = self.scheduler.get(job_id)
        writer.write(_response_head(200, "application/x-ndjson",
                                    length=None))
        await writer.drain()
        cursor = 0
        while True:
            # Clear-then-read: an event landing after the read sets
            # the flag again, so nothing is ever missed.
            job.new_event.clear()
            events = job.events
            while cursor < len(events):
                writer.write(json.dumps(events[cursor],
                                        sort_keys=True).encode()
                             + b"\n")
                cursor += 1
            await writer.drain()
            if job.terminal and cursor >= len(job.events):
                return
            await job.new_event.wait()

    async def _send_recording(self, job_id: str, index: int,
                              writer) -> None:
        """Ship a point's recording file verbatim (it is already
        canonical JSON, checksum included — re-encoding could only
        break byte-identity with the server-side artifact)."""
        path = self.scheduler.recording_path(job_id, index)
        body = path.read_bytes()
        writer.write(_response_head(200, "application/json",
                                    len(body)) + body)
        await writer.drain()

    @staticmethod
    async def _send_json(writer, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        writer.write(_response_head(status, "application/json",
                                    len(body)) + body)
        await writer.drain()


def _query_param(query: str, name: str) -> Optional[str]:
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        if key == name and value:
            return value
    return None
