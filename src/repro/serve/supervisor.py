"""Worker supervision: deadlines, hang detection, kill-and-respawn.

``ProcessPoolExecutor`` has two failure modes the bare scheduler
could not survive:

- **a worker dies** (OOM kill, segfault, chaos ``SIGKILL``): the pool
  marks itself broken, every in-flight future fails with
  ``BrokenProcessPool``, and every later submit raises — the whole
  server is wedged by one dead process;
- **a worker hangs** (deadlock, runaway point): the future simply
  never completes and the slot it occupies is gone forever.

:class:`WorkerSupervisor` wraps the pool with both covered. Every
submission is tracked as a :class:`_Flight` carrying an optional
deadline; a single watchdog task (started lazily with the first
deadline, self-terminating when none remain — so schedulers in unit
tests that never ``start()`` spawn no background work) ticks every
``heartbeat_s`` and fires each flight's ``on_timeout`` callback
exactly once when it blows its deadline. The scheduler's callback
decides policy (retry / quarantine) and calls :meth:`restart`, which
kills the old pool's processes outright (they are hung or dead —
graceful shutdown would block forever), swaps in a fresh executor,
and lets queued work resubmit. Restart is **idempotent per
breakage**: callbacks from several simultaneously-failed futures all
call it, only the first one acting on a live-but-broken pool pays.

The supervisor never retries by itself — retry/backoff/quarantine
policy lives in the scheduler, which knows about jobs, points and
the journal. This class only answers "is the pool alive, and did
this flight come back in time?".
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional


def _worker_context():
    """The multiprocessing context for supervised pools.

    Plain ``fork`` is a trap here: :meth:`WorkerSupervisor.restart`
    forks replacement workers *while client connections are open*,
    and fork-children inherit every open socket FD — the kernel then
    never sends FIN on those connections when the server closes them,
    so every pre-restart NDJSON stream hangs forever. ``forkserver``
    workers are forked from a clean early-started helper process that
    holds no connection FDs (``spawn`` as the fallback re-execs, which
    drops non-inheritable FDs per PEP 446).
    """
    try:
        context = multiprocessing.get_context("forkserver")
        # Pre-import the hot modules once in the fork server so each
        # respawned worker inherits warm imports instead of paying
        # them per fork.
        context.set_forkserver_preload(
            ["repro.sim.sweep", "repro.workloads.registry"])
        return context
    except ValueError:  # platform without forkserver
        return multiprocessing.get_context("spawn")


def _noop() -> None:
    """Target for the fork-server kick in :meth:`start`."""


def _warm_worker() -> int:
    """Run one micro-simulation so the worker has imported every hot
    module and built its first system before real points arrive."""
    from ..config import SystemConfig
    from ..sim.sweep import build_system
    from ..workloads.registry import generate
    workload = generate("fft", 1, scale=0.01, seed=0)
    return build_system(SystemConfig(num_processors=1)).run(
        workload).cycles


class _Flight:
    """One submitted execution under watchdog supervision."""

    __slots__ = ("future", "deadline_monotonic", "on_timeout",
                 "timed_out")

    def __init__(self, future: asyncio.Future,
                 deadline_monotonic: Optional[float],
                 on_timeout: Optional[Callable[[], None]]):
        self.future = future
        self.deadline_monotonic = deadline_monotonic
        self.on_timeout = on_timeout
        self.timed_out = False


class WorkerSupervisor:
    """A self-healing wrapper around the scheduler's worker pool."""

    def __init__(self, max_workers: int = 2, warmup: bool = True,
                 executor=None, executor_factory=None,
                 heartbeat_s: float = 0.1):
        self.max_workers = max(1, max_workers)
        self._warmup = warmup
        self._executor = executor
        # An injected executor (tests hand in a ThreadPoolExecutor)
        # is never killed/replaced unless a factory says how.
        self._injected = executor is not None
        self._factory = executor_factory
        self.heartbeat_s = heartbeat_s
        self.restarts = 0
        self.on_restart: Optional[Callable[[str], None]] = None
        self._flights: List[_Flight] = []
        self._watchdog: Optional[asyncio.Task] = None
        self._context = None

    # -- pool lifecycle ------------------------------------------------

    @property
    def executor(self):
        return self._executor

    @property
    def alive(self) -> bool:
        """False once the pool has broken (a worker died) and submits
        would raise; :meth:`restart` restores it."""
        if self._executor is None:
            return False
        return not getattr(self._executor, "_broken", False)

    def _make_executor(self):
        if self._factory is not None:
            return self._factory()
        if self._context is None:
            self._context = _worker_context()
        return ProcessPoolExecutor(max_workers=self.max_workers,
                                   mp_context=self._context)

    async def start(self) -> "WorkerSupervisor":
        """Create (and warm) the worker pool; returns self.

        Call this before the server starts accepting connections:
        it kicks the fork server to life while no connection FDs
        exist yet (see :func:`_worker_context`) — started any later,
        the long-lived fork server would inherit whatever sockets
        happen to be open and pin them forever.
        """
        if self._executor is None:
            self._executor = self._make_executor()
        if self._context is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._kick_context)
        if self._warmup:
            loop = asyncio.get_running_loop()
            await asyncio.gather(*(
                loop.run_in_executor(self._executor, _warm_worker)
                for _ in range(self.max_workers)))
        return self

    def _kick_context(self) -> None:
        """One throwaway process round-trip to start the fork server
        (or prime spawn) before any connection exists."""
        process = self._context.Process(target=_noop)
        process.start()
        process.join()

    def restart(self, reason: str = "", force: bool = False) -> bool:
        """Replace a broken pool with a fresh one.

        Kills the old pool's worker processes outright (they are hung
        or already dead; a graceful shutdown would join them forever)
        and abandons their futures — the executor has already failed
        them, or the caller's deadline policy has given up on them.
        No-op unless the pool is actually broken (or ``force``), which
        makes the many done-callbacks of one mass failure collapse to
        a single restart. Returns True when a swap happened.
        """
        if self._injected and self._factory is None:
            return False
        if self._executor is not None and self.alive and not force:
            return False
        old = self._executor
        self._executor = None
        if old is not None:
            processes = getattr(old, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.kill()
                except Exception:
                    pass
            try:
                old.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        self._executor = self._make_executor()
        # Skip warmup on restart: recovery latency beats the first
        # point paying import cost again.
        self.restarts += 1
        if self.on_restart is not None:
            self.on_restart(reason)
        return True

    def stop(self) -> None:
        """Cancel the watchdog and shut down an owned pool.

        Worker processes are terminated explicitly: the caller has
        already drained (or given up on) outstanding work, and
        ``shutdown(wait=False)`` alone leaves workers exiting
        asynchronously — forkserver-spawned workers that outlive
        their parent leak as orphans.
        """
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self._executor is not None and not self._injected:
            processes = getattr(self._executor, "_processes",
                                None) or {}
            self._executor.shutdown(wait=False, cancel_futures=True)
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass

    # -- supervised submission -----------------------------------------

    def submit(self, fn, arg, deadline_s: Optional[float] = None,
               on_timeout: Optional[Callable[[], None]] = None
               ) -> asyncio.Future:
        """Submit ``fn(arg)`` to the pool under supervision.

        A broken pool is restarted transparently before submitting.
        When ``deadline_s`` is set, ``on_timeout`` fires (once, from
        the event loop) if the flight is still running past it — the
        future itself is left to the caller's policy, since a hung
        process future can never be cancelled cleanly.
        """
        if self._executor is None or not self.alive:
            self.restart(reason="submit on broken pool")
        try:
            raw = self._executor.submit(fn, arg)
        except (BrokenProcessPool, RuntimeError):
            self.restart(reason="submit raised")
            raw = self._executor.submit(fn, arg)
        future = asyncio.wrap_future(raw)
        deadline = None if deadline_s is None \
            else time.monotonic() + deadline_s
        flight = _Flight(future, deadline, on_timeout)
        self._flights.append(flight)
        future.add_done_callback(
            lambda _done, flight=flight: self._untrack(flight))
        if deadline is not None:
            self._ensure_watchdog()
        return future

    def _untrack(self, flight: _Flight) -> None:
        try:
            self._flights.remove(flight)
        except ValueError:
            pass

    # -- watchdog ------------------------------------------------------

    def _ensure_watchdog(self) -> None:
        if self._watchdog is None or self._watchdog.done():
            self._watchdog = asyncio.get_running_loop().create_task(
                self._watch())

    async def _watch(self) -> None:
        """Tick until no deadline-carrying flight remains; fire each
        overdue flight's timeout callback exactly once."""
        while any(flight.deadline_monotonic is not None
                  for flight in self._flights):
            await asyncio.sleep(self.heartbeat_s)
            now = time.monotonic()
            for flight in list(self._flights):
                if (flight.deadline_monotonic is not None
                        and not flight.timed_out
                        and not flight.future.done()
                        and now >= flight.deadline_monotonic):
                    flight.timed_out = True
                    if flight.on_timeout is not None:
                        flight.on_timeout()

    # -- observability -------------------------------------------------

    def describe(self) -> dict:
        return {
            "alive": self.alive,
            "restarts": self.restarts,
            "supervised_inflight": len(self._flights),
            "watching": self._watchdog is not None
            and not self._watchdog.done(),
        }
