"""Weighted fair queuing over tenants (virtual-time scheduling).

The server must not let one chatty tenant starve everyone else: a
tenant who submits a 500-point sweep and a tenant who submits 5
points should both make progress, proportionally to their weights.
This is classic weighted fair queuing, implemented with virtual
finish times (stride scheduling):

- each tenant carries a virtual time; popping one of its items
  advances it by ``1 / weight``, so a weight-2 tenant's clock runs at
  half speed and it is picked twice as often;
- the queue always pops the active tenant with the smallest virtual
  time (ties broken deterministically by tenant name);
- a tenant that went idle and returns resumes at
  ``max(own vtime, global vclock)`` — it does not accumulate credit
  while idle and cannot monopolize the queue on return.

The structure is a plain heap over active tenants plus one FIFO per
tenant, so every operation is O(log tenants). Not thread-safe by
design: the scheduler drives it from a single asyncio loop.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class _Tenant:
    __slots__ = ("name", "weight", "vtime", "items", "in_heap")

    def __init__(self, name: str, weight: int, vtime: float):
        self.name = name
        self.weight = weight
        self.vtime = vtime
        self.items: deque = deque()
        self.in_heap = False


class WeightedFairQueue:
    """Per-tenant FIFOs drained in weighted virtual-time order."""

    def __init__(self) -> None:
        self._tenants: Dict[str, _Tenant] = {}
        self._heap: List[Tuple[float, str]] = []
        self._vclock = 0.0
        self._size = 0

    def push(self, tenant: str, item, weight: int = 1) -> None:
        """Append ``item`` to ``tenant``'s FIFO (weight >= 1 applies
        to this and subsequent pops)."""
        state = self._tenants.get(tenant)
        if state is None:
            state = _Tenant(tenant, max(1, weight), self._vclock)
            self._tenants[tenant] = state
        else:
            state.weight = max(1, weight)
        if not state.in_heap:
            # (Re-)activation: no credit for idle time, no penalty
            # for having been fast earlier.
            state.vtime = max(state.vtime, self._vclock)
            heapq.heappush(self._heap, (state.vtime, tenant))
            state.in_heap = True
        state.items.append(item)
        self._size += 1

    def push_front(self, tenant: str, item, weight: int = 1) -> None:
        """Prepend ``item`` to ``tenant``'s FIFO — used to requeue a
        point being retried so it runs before the tenant's newer
        work. Fairness across tenants is untouched (the tenant's
        virtual time already charged for the first attempt)."""
        state = self._tenants.get(tenant)
        if state is None:
            state = _Tenant(tenant, max(1, weight), self._vclock)
            self._tenants[tenant] = state
        if not state.in_heap:
            state.vtime = max(state.vtime, self._vclock)
            heapq.heappush(self._heap, (state.vtime, tenant))
            state.in_heap = True
        state.items.appendleft(item)
        self._size += 1

    def pop(self):
        """Pop ``(tenant, item)`` from the lowest-vtime active tenant."""
        while self._heap:
            vtime, name = heapq.heappop(self._heap)
            state = self._tenants[name]
            if not state.items:
                state.in_heap = False  # drained by remove(); skip
                continue
            item = state.items.popleft()
            self._size -= 1
            self._vclock = vtime
            state.vtime = vtime + 1.0 / state.weight
            if state.items:
                heapq.heappush(self._heap, (state.vtime, name))
            else:
                state.in_heap = False
            return name, item
        raise IndexError("pop from an empty fair queue")

    def remove(self, predicate: Callable[[object], bool]) -> int:
        """Drop every queued item matching ``predicate``; returns how
        many were dropped (job cancellation)."""
        removed = 0
        for state in self._tenants.values():
            if not state.items:
                continue
            kept = deque(item for item in state.items
                         if not predicate(item))
            removed += len(state.items) - len(kept)
            state.items = kept
        self._size -= removed
        return removed

    def depth(self, tenant: str) -> int:
        state = self._tenants.get(tenant)
        return len(state.items) if state is not None else 0

    def depths(self) -> Dict[str, int]:
        """Queued-item count per tenant with a non-empty FIFO."""
        return {name: len(state.items)
                for name, state in sorted(self._tenants.items())
                if state.items}

    def drain(self) -> Iterator[Tuple[str, object]]:
        """Pop everything, in fair order."""
        while self._size:
            yield self.pop()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def vclock(self) -> float:
        return self._vclock

    def weight_of(self, tenant: str) -> Optional[int]:
        state = self._tenants.get(tenant)
        return state.weight if state is not None else None
