"""Simulation-as-a-service: the async sweep server (``repro serve``).

The sweep runner (:mod:`repro.sim.sweep`) serves one caller: it spins
up a worker pool, runs the points, and tears everything down — every
figure suite pays the pool spawn, module imports and AES key-schedule
warmup again. This package turns that into a long-lived service:

- :class:`~repro.serve.scheduler.Scheduler` — accepts jobs, orders
  their points through a per-tenant **weighted fair queue**
  (:mod:`~repro.serve.fairqueue`), executes them on one **warm
  process pool** that survives across jobs, and **dedupes** identical
  points across jobs and tenants on
  :func:`~repro.sim.sweep.point_key` plus one shared
  :class:`~repro.sim.sweep.ResultCache`;
- :class:`~repro.serve.http.ServeHTTP` — a stdlib-only asyncio
  HTTP/1.1 front end (``POST /v1/jobs``, NDJSON progress streams,
  429 backpressure, graceful drain);
- :class:`~repro.serve.client.ServeClient` — the blocking client the
  ``repro submit`` / ``repro jobs`` CLI commands use, with seeded
  transport retries and a resumable event stream;
- :class:`~repro.serve.journal.JobJournal` — the append-only JSONL
  WAL behind ``repro serve --state-dir``/``--resume`` (crashed
  servers re-admit incomplete jobs; docs/resilience.md);
- :class:`~repro.serve.supervisor.WorkerSupervisor` — deadline
  watchdog + kill-and-respawn over the worker pool.

Results served over the wire are bit-identical — cycles, per-CPU
clocks and every statistic — to a direct :func:`run_sweep` call
(pinned by tests/serve/test_http.py); the NDJSON progress events
reuse the Chrome trace-event schema
(:data:`repro.obs.schema.TRACE_EVENT_SCHEMA`, ``cat: "serve"``), so a
captured stream loads in Perfetto. See docs/serving.md.
"""

from .client import ServeClient
from .fairqueue import WeightedFairQueue
from .jobs import JobSpec, parse_job_request, point_from_dict, \
    point_to_dict, result_from_dict, result_to_dict
from .journal import JobJournal, JournaledJob
from .scheduler import Job, Scheduler
from .supervisor import WorkerSupervisor

__all__ = [
    "Job",
    "JobJournal",
    "JobSpec",
    "JournaledJob",
    "Scheduler",
    "ServeClient",
    "WeightedFairQueue",
    "WorkerSupervisor",
    "parse_job_request",
    "point_from_dict",
    "point_to_dict",
    "result_from_dict",
    "result_to_dict",
]
