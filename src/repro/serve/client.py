"""Blocking client for the sweep service (``repro submit`` et al.).

Raw sockets rather than :mod:`http.client`: the server speaks the
simplest close-delimited HTTP/1.1 dialect, and reading an NDJSON
stream line-by-line off a plain socket file is both shorter and
easier to reason about than chunked-transfer plumbing. One request
per connection, matching the server's ``Connection: close``.

Typical use::

    from repro.serve import ServeClient
    client = ServeClient(port=8642)
    job = client.submit(points, tenant="figures", weight=2)
    final = client.wait(job["id"])          # follows the event stream
    results = client.results(job["id"])     # SimulationResults

Resilience (docs/resilience.md): connect and read phases carry
separate timeouts, transport-level failures (refused / reset /
timed-out connections) are retried with seeded exponential backoff,
and the event stream is **resumable** — a connection dropped
mid-NDJSON-line reconnects and skips the events already seen (the
server replays a job's full history on every stream request), so
``repro jobs --follow`` survives a server restart instead of dying
mid-stream. ``POST`` is only retried when the failure happened
before the request was sent — a submission that *might* have been
accepted is never silently re-sent.

Service-side failures (400/404/429/503) re-raise as
:class:`~repro.errors.ServeError` carrying the HTTP status, so
``except BackpressureError`` works the same on both sides of the
wire. Transport failures re-raise the *original* ``OSError`` once
retries are exhausted — callers probing for an up server keep their
``except OSError`` semantics.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import BackpressureError, ServeError
from ..sim.sweep import SweepPoint
from ..smp.metrics import SimulationResult
from .jobs import job_request_dict, result_from_dict


class ServeClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0,
                 connect_timeout: Optional[float] = None,
                 read_timeout: Optional[float] = None,
                 retries: int = 2, backoff_s: float = 0.2,
                 seed: int = 0):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: connect/read phases fall back to the blanket timeout
        self.connect_timeout = connect_timeout \
            if connect_timeout is not None else timeout
        self.read_timeout = read_timeout \
            if read_timeout is not None else timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.seed = seed

    # -- HTTP plumbing -------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout)
        sock.settimeout(self.read_timeout)
        return sock

    def _backoff_delay(self, what: str, attempt: int) -> float:
        """Seeded exponential backoff with jitter — deterministic per
        (client seed, operation, attempt), so retry traffic is
        reproducible in tests and decorrelated across clients."""
        rng = random.Random(f"{self.seed}:{what}:{attempt}")
        return self.backoff_s * (2 ** (attempt - 1)) \
            * (1.0 + rng.random())

    @staticmethod
    def _send_request(sock: socket.socket, method: str, path: str,
                      body: Optional[bytes]) -> None:
        lines = [f"{method} {path} HTTP/1.1",
                 "Host: repro-serve",
                 "Connection: close"]
        if body is not None:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        sock.sendall(head + (body or b""))

    @staticmethod
    def _read_head(handle) -> Tuple[int, Dict[str, str]]:
        status_line = handle.readline().decode("latin-1")
        parts = status_line.split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ServeError(
                f"malformed response: {status_line!r}", status=502)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = handle.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    @classmethod
    def _raise_for_status(cls, status: int, body: bytes) -> None:
        if status < 400:
            return
        try:
            message = json.loads(body.decode("utf-8"))["error"]
        except (ValueError, KeyError, UnicodeDecodeError):
            message = body.decode("utf-8", "replace") or f"HTTP {status}"
        if status == 429:
            raise BackpressureError(message)
        raise ServeError(message, status=status)

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        """One request with transport-level retry.

        Idempotent methods retry on any transport failure; ``POST``
        retries only when the connection itself failed (the request
        was provably never sent, so a duplicate submission is
        impossible). Exhausted retries re-raise the original error.
        """
        body = None if payload is None else \
            json.dumps(payload).encode("utf-8")
        idempotent = method in ("GET", "DELETE")
        for attempt in range(self.retries + 1):
            connected = False
            try:
                with self._connect() as sock:
                    connected = True
                    self._send_request(sock, method, path, body)
                    with sock.makefile("rb") as handle:
                        status, headers = self._read_head(handle)
                        length = headers.get("content-length")
                        data = handle.read(int(length)) \
                            if length is not None else handle.read()
            except OSError:
                # socket.timeout is an OSError subclass, so both
                # connect- and read-phase timeouts land here.
                retryable = idempotent or not connected
                if attempt >= self.retries or not retryable:
                    raise
                time.sleep(self._backoff_delay(
                    f"{method} {path}", attempt + 1))
                continue
            self._raise_for_status(status, data)
            return json.loads(data.decode("utf-8")) if data else {}
        raise AssertionError("unreachable")  # pragma: no cover

    # -- API -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def readyz(self) -> dict:
        """Readiness verdict: ``{"ready": bool, "reason": str}``.
        Raises ServeError(503) when the server answers not-ready."""
        return self._request("GET", "/v1/readyz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> dict:
        """The live metrics plane (``/v1/metrics``; schema in
        docs/serving.md)."""
        return self._request("GET", "/v1/metrics")

    def submit(self, points: Sequence[SweepPoint],
               tenant: str = "default", weight: int = 1,
               record: bool = False) -> dict:
        """Submit SweepPoints as one job; returns the job summary.

        ``record=True`` asks the server to keep a deterministic
        recording per point (needs a server started with
        ``--record-dir``); fetch them with :meth:`recording`.
        """
        return self._request(
            "POST", "/v1/jobs",
            job_request_dict(points, tenant=tenant, weight=weight,
                             record=record))

    def submit_raw(self, payload: dict) -> dict:
        """Submit an already-serialized job request body."""
        return self._request("POST", "/v1/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, tenant: Optional[str] = None) -> List[dict]:
        path = "/v1/jobs" if tenant is None \
            else f"/v1/jobs?tenant={tenant}"
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def results(self, job_id: str
                ) -> List[Optional[SimulationResult]]:
        """The job's results, positionally, as SimulationResults
        (``None`` for pending/failed points)."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/results")
        return [result_from_dict(entry)
                for entry in payload["results"]]

    def errors(self, job_id: str) -> List[Optional[str]]:
        payload = self._request("GET", f"/v1/jobs/{job_id}/results")
        return payload["errors"]

    def recording(self, job_id: str, index: int) -> dict:
        """The raw recording payload for one point of a record job
        (load it with ``repro.obs.Recording(payload)`` or save the
        JSON and use ``repro replay``/``repro diff``)."""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/recordings/{index}")

    def recording_bytes(self, job_id: str, index: int) -> bytes:
        """The recording exactly as served — the server ships the
        artifact verbatim, so these bytes equal the on-disk file
        (the chaos harness compares them byte-for-byte against a
        clean run's recordings)."""
        path = f"/v1/jobs/{job_id}/recordings/{index}"
        for attempt in range(self.retries + 1):
            try:
                with self._connect() as sock:
                    self._send_request(sock, "GET", path, None)
                    with sock.makefile("rb") as handle:
                        status, headers = self._read_head(handle)
                        length = headers.get("content-length")
                        data = handle.read(int(length)) \
                            if length is not None else handle.read()
            except OSError:
                if attempt >= self.retries:
                    raise
                time.sleep(self._backoff_delay(
                    f"GET {path}", attempt + 1))
                continue
            self._raise_for_status(status, data)
            return data
        raise AssertionError("unreachable")  # pragma: no cover

    def stream_events(self, job_id: str) -> Iterator[dict]:
        """Yield the job's NDJSON progress events; the stream replays
        history first, then follows live and ends when the job is
        terminal. Events are schema-valid Chrome trace events.

        Resumable: if the connection drops mid-stream (server
        restart, reset), the client reconnects with backoff and
        skips the events it already yielded — the server replays the
        job's full history on every stream request, so the cursor is
        just a line count. Gives up (ServeError 503) after the
        retry budget.
        """
        seen = 0
        drops = 0
        while True:
            terminal = False
            try:
                with self._connect() as sock:
                    # The stream follows the job live: quiet
                    # stretches between points are expected, so no
                    # read timeout here.
                    sock.settimeout(None)
                    self._send_request(
                        sock, "GET", f"/v1/jobs/{job_id}/events",
                        None)
                    with sock.makefile("rb") as handle:
                        status, _headers = self._read_head(handle)
                        if status >= 400:
                            self._raise_for_status(status,
                                                   handle.read())
                        cursor = 0
                        for line in handle:
                            line = line.strip()
                            if not line:
                                continue
                            try:
                                event = json.loads(
                                    line.decode("utf-8"))
                            except ValueError:
                                break  # torn line: treat as a drop
                            cursor += 1
                            if event.get("name") == "job_done":
                                terminal = True
                            if cursor > seen:
                                seen = cursor
                                yield event
            except OSError:
                pass  # dropped connection: fall through to retry
            if terminal:
                return
            drops += 1
            if drops > self.retries:
                raise ServeError(
                    f"event stream for {job_id} dropped "
                    f"{drops} times; giving up", status=503)
            time.sleep(self._backoff_delay(
                f"stream {job_id}", drops))

    def wait(self, job_id: str) -> dict:
        """Block until the job is terminal (via the event stream);
        returns the final job summary."""
        for _event in self.stream_events(job_id):
            pass
        return self.job(job_id)
