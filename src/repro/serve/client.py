"""Blocking client for the sweep service (``repro submit`` et al.).

Raw sockets rather than :mod:`http.client`: the server speaks the
simplest close-delimited HTTP/1.1 dialect, and reading an NDJSON
stream line-by-line off a plain socket file is both shorter and
easier to reason about than chunked-transfer plumbing. One request
per connection, matching the server's ``Connection: close``.

Typical use::

    from repro.serve import ServeClient
    client = ServeClient(port=8642)
    job = client.submit(points, tenant="figures", weight=2)
    final = client.wait(job["id"])          # follows the event stream
    results = client.results(job["id"])     # SimulationResults

Service-side failures (400/404/429/503) re-raise as
:class:`~repro.errors.ServeError` carrying the HTTP status, so
``except BackpressureError`` works the same on both sides of the
wire.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import BackpressureError, ServeError
from ..sim.sweep import SweepPoint
from ..smp.metrics import SimulationResult
from .jobs import job_request_dict, result_from_dict


class ServeClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- HTTP plumbing -------------------------------------------------

    def _connect(self) -> socket.socket:
        return socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)

    @staticmethod
    def _send_request(sock: socket.socket, method: str, path: str,
                      body: Optional[bytes]) -> None:
        lines = [f"{method} {path} HTTP/1.1",
                 "Host: repro-serve",
                 "Connection: close"]
        if body is not None:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        sock.sendall(head + (body or b""))

    @staticmethod
    def _read_head(handle) -> Tuple[int, Dict[str, str]]:
        status_line = handle.readline().decode("latin-1")
        parts = status_line.split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ServeError(
                f"malformed response: {status_line!r}", status=502)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = handle.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    @classmethod
    def _raise_for_status(cls, status: int, body: bytes) -> None:
        if status < 400:
            return
        try:
            message = json.loads(body.decode("utf-8"))["error"]
        except (ValueError, KeyError, UnicodeDecodeError):
            message = body.decode("utf-8", "replace") or f"HTTP {status}"
        if status == 429:
            raise BackpressureError(message)
        raise ServeError(message, status=status)

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        body = None if payload is None else \
            json.dumps(payload).encode("utf-8")
        with self._connect() as sock:
            self._send_request(sock, method, path, body)
            with sock.makefile("rb") as handle:
                status, headers = self._read_head(handle)
                length = headers.get("content-length")
                data = handle.read(int(length)) \
                    if length is not None else handle.read()
        self._raise_for_status(status, data)
        return json.loads(data.decode("utf-8")) if data else {}

    # -- API -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> dict:
        """The live metrics plane (``/v1/metrics``; schema in
        docs/serving.md)."""
        return self._request("GET", "/v1/metrics")

    def submit(self, points: Sequence[SweepPoint],
               tenant: str = "default", weight: int = 1,
               record: bool = False) -> dict:
        """Submit SweepPoints as one job; returns the job summary.

        ``record=True`` asks the server to keep a deterministic
        recording per point (needs a server started with
        ``--record-dir``); fetch them with :meth:`recording`.
        """
        return self._request(
            "POST", "/v1/jobs",
            job_request_dict(points, tenant=tenant, weight=weight,
                             record=record))

    def submit_raw(self, payload: dict) -> dict:
        """Submit an already-serialized job request body."""
        return self._request("POST", "/v1/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, tenant: Optional[str] = None) -> List[dict]:
        path = "/v1/jobs" if tenant is None \
            else f"/v1/jobs?tenant={tenant}"
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def results(self, job_id: str
                ) -> List[Optional[SimulationResult]]:
        """The job's results, positionally, as SimulationResults
        (``None`` for pending/failed points)."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/results")
        return [result_from_dict(entry)
                for entry in payload["results"]]

    def errors(self, job_id: str) -> List[Optional[str]]:
        payload = self._request("GET", f"/v1/jobs/{job_id}/results")
        return payload["errors"]

    def recording(self, job_id: str, index: int) -> dict:
        """The raw recording payload for one point of a record job
        (load it with ``repro.obs.Recording(payload)`` or save the
        JSON and use ``repro replay``/``repro diff``)."""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/recordings/{index}")

    def stream_events(self, job_id: str) -> Iterator[dict]:
        """Yield the job's NDJSON progress events; the stream replays
        history first, then follows live and ends when the job is
        terminal. Events are schema-valid Chrome trace events."""
        with self._connect() as sock:
            # The stream follows the job live: quiet stretches between
            # points are expected, so no read timeout here.
            sock.settimeout(None)
            self._send_request(sock, "GET",
                               f"/v1/jobs/{job_id}/events", None)
            with sock.makefile("rb") as handle:
                status, _headers = self._read_head(handle)
                if status >= 400:
                    self._raise_for_status(status, handle.read())
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))

    def wait(self, job_id: str) -> dict:
        """Block until the job is terminal (via the event stream);
        returns the final job summary."""
        for _event in self.stream_events(job_id):
            pass
        return self.job(job_id)
