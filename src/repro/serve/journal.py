"""Durable job journal: an append-only JSONL write-ahead log.

The scheduler volunteers everything it accepts into one journal file
(``<state-dir>/journal.jsonl``): job submission (with the full job
spec, so the job can be rebuilt from the journal alone), per-point
dispatch, completion and failure, cancellation, and terminal state.
On restart, ``repro serve --resume`` replays the journal and
re-admits every job that never reached a terminal state — its points
re-enter the fair queue, where already-completed points short-circuit
through the shared :class:`~repro.sim.sweep.ResultCache` (results are
*not* stored in the journal; ``point_key`` idempotency makes re-
dispatching a completed point a cache hit, never a re-simulation).

Durability model: every record is one JSON line, written and flushed
before the action it describes is observable to clients. A flush
survives the *process* dying (SIGKILL included) because the bytes are
in the page cache; surviving power loss needs ``fsync=True`` (off by
default — the journal protects against crashed or killed servers,
which is the failure mode the chaos harness injects). A crash can
tear at most the final line mid-write; :meth:`replay` tolerates that
by skipping any line that fails to parse. Records carry a ``rec``
discriminator and ``v`` schema version; unknown record kinds are
skipped on replay so old servers can read journals written by newer
ones.

Rotation: on startup the previous journal (if any) is renamed to
``journal.jsonl.prev`` — after a ``--resume`` every incomplete job is
re-journalled into the fresh file (a *second* crash still recovers),
and without ``--resume`` the stale file is archived rather than
silently replayed. Only one generation is kept.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

#: bump when a record shape changes incompatibly
JOURNAL_SCHEMA_VERSION = 1

#: default journal filename inside a server state directory
JOURNAL_NAME = "journal.jsonl"


@dataclass
class JournaledJob:
    """One job's state as reconstructed from journal records."""

    job_id: str
    payload: Optional[dict] = None    # the job-request dict (spec)
    state: Optional[str] = None       # terminal state, or None
    started: Set[int] = field(default_factory=set)
    done: Set[int] = field(default_factory=set)
    failed: Set[int] = field(default_factory=set)

    @property
    def incomplete(self) -> bool:
        """True when the job was accepted but never reached a
        terminal state — the jobs ``--resume`` re-admits."""
        return self.payload is not None and self.state is None

    @property
    def inflight(self) -> Set[int]:
        """Points dispatched but never completed (in flight at the
        crash, or lost with a killed worker)."""
        return self.started - self.done - self.failed


class JobJournal:
    """Append-only JSONL WAL for the sweep-service scheduler.

    The file is opened lazily on the first append (so constructing a
    journal never touches disk) and every record is flushed before
    :meth:`append` returns. Not thread-safe by design: the scheduler
    drives it from its single asyncio loop.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = False):
        self.path = Path(path)
        # A directory (existing, or a not-yet-created extension-less
        # path like ``--state-dir state``) holds the default file
        # name; an explicit ``*.jsonl``-style path is used verbatim.
        if self.path.is_dir() or (not self.path.exists()
                                  and not self.path.suffix):
            self.path = self.path / JOURNAL_NAME
        self.fsync = fsync
        self.records_written = 0
        self._handle = None

    # -- writing -------------------------------------------------------

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or \
            self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self.append({"rec": "open",
                         "v": JOURNAL_SCHEMA_VERSION})

    def append(self, record: Dict[str, object]) -> None:
        """Write one record and flush it to the OS before returning."""
        if self._handle is None:
            self._open()
        record.setdefault("ts", round(time.time(), 3))
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- typed records -------------------------------------------------

    def job_submitted(self, job_id: str, spec_payload: dict) -> None:
        self.append({"rec": "submit", "job": job_id,
                     "spec": spec_payload})

    def point_started(self, job_id: str, index: int, key: str,
                      attempt: int) -> None:
        self.append({"rec": "start", "job": job_id, "index": index,
                     "key": key, "attempt": attempt})

    def point_done(self, job_id: str, index: int, source: str) -> None:
        self.append({"rec": "done", "job": job_id, "index": index,
                     "source": source})

    def point_failed(self, job_id: str, index: int, error: str,
                     quarantined: bool = False) -> None:
        self.append({"rec": "fail", "job": job_id, "index": index,
                     "error": error, "quarantined": quarantined})

    def point_retry(self, job_id: str, index: int, attempt: int,
                    error: str) -> None:
        self.append({"rec": "retry", "job": job_id, "index": index,
                     "attempt": attempt, "error": error})

    def job_cancelled(self, job_id: str) -> None:
        self.append({"rec": "cancel", "job": job_id})

    def job_done(self, job_id: str, state: str) -> None:
        self.append({"rec": "end", "job": job_id, "state": state})

    # -- replay / rotation ---------------------------------------------

    @classmethod
    def replay(cls, path: Union[str, Path]) -> List[JournaledJob]:
        """Reconstruct per-job state from a journal file, in
        submission order. Torn or malformed lines (a crash can cut
        the final line mid-write) are skipped, never fatal."""
        path = Path(path)
        if path.is_dir():
            path = path / JOURNAL_NAME
        jobs: Dict[str, JournaledJob] = {}
        order: List[str] = []
        if not path.is_file():
            return []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a mid-append crash
                if not isinstance(record, dict):
                    continue
                kind = record.get("rec")
                job_id = record.get("job")
                if kind == "open" or not isinstance(job_id, str):
                    continue
                entry = jobs.get(job_id)
                if entry is None:
                    entry = jobs[job_id] = JournaledJob(job_id)
                    order.append(job_id)
                if kind == "submit":
                    entry.payload = record.get("spec")
                elif kind == "start":
                    entry.started.add(record.get("index"))
                elif kind == "done":
                    entry.done.add(record.get("index"))
                elif kind == "fail":
                    entry.failed.add(record.get("index"))
                elif kind in ("cancel", "end"):
                    entry.state = record.get("state", "cancelled")
                # unknown kinds: forward-compatible skip
        return [jobs[job_id] for job_id in order]

    def rotate(self) -> Optional[Path]:
        """Archive the current journal file to ``<name>.prev`` (one
        generation kept); the next append starts a fresh file.
        Returns the archive path if anything was rotated."""
        self.close()
        if not self.path.is_file():
            return None
        archive = self.path.with_name(self.path.name + ".prev")
        self.path.replace(archive)
        return archive

    def replay_and_rotate(self) -> List[JournaledJob]:
        """Read the journal's job states, then rotate it aside —
        the startup (``--resume``) sequence."""
        entries = self.replay(self.path)
        self.rotate()
        return entries
