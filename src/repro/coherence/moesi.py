"""MOESI — the MESI variant with an Owned state (protocol ablation).

MESI's dirty intervention flushes the line to memory as it is shared
out (the supplier drops from M to S). MOESI keeps the dirty line
on-chip: the supplier moves to OWNED, continues to answer BusRd
requests for the line, and memory is only updated when the O copy is
finally evicted. The effect SENSS cares about: dirty sharing stays
entirely on the cache-to-cache path (protected by the bus masks), and
the memory-update traffic of read-shared dirty lines disappears.
"""

from __future__ import annotations

from typing import List, Optional

from ..cache.mesi import MesiState
from .protocol import MesiProtocol, SnoopOutcome


class MoesiProtocol(MesiProtocol):
    """MESI plus the Owned state."""

    # An O holder, like an S holder, must broadcast before writing.
    UPGRADABLE_STATES = (MesiState.SHARED, MesiState.OWNED)

    def bus_read(self, requester: int, line_address: int) -> SnoopOutcome:
        """Remote effects of a read miss under MOESI.

        A dirty holder (M or O) supplies and *retains ownership* (M
        drops to O, O stays O); memory is NOT updated, so the outcome
        reports no dirty flush. Clean holders behave as in MESI.
        """
        supplier: Optional[int] = None
        owner: Optional[int] = None
        any_valid = False
        for entry in self._remotes(requester):
            cpu_id, hierarchy = entry[0], entry[1]
            prior = hierarchy.snoop_read(line_address,
                                         dirty_to_owned=True)
            if not prior.is_valid:
                continue
            any_valid = True
            if supplier is None:
                supplier = cpu_id
            if prior in (MesiState.MODIFIED, MesiState.OWNED):
                owner = cpu_id
        if owner is not None:
            supplier = owner
        fill_state = (MesiState.SHARED if any_valid
                      else MesiState.EXCLUSIVE)
        outcome = SnoopOutcome(supplier_cpu=supplier,
                               # Ownership was retained: nothing flushed.
                               had_modified_copy=False,
                               invalidated_cpus=[],
                               fill_state=fill_state)
        if self.observer is not None:
            self.observer.on_snoop(0, requester, line_address, outcome)
        return outcome

    def bus_read_exclusive(self, requester: int,
                           line_address: int) -> SnoopOutcome:
        """Write miss: identical to MESI except an O holder (not just
        M) is the dirty supplier whose data must move."""
        supplier: Optional[int] = None
        had_dirty = False
        invalidated: List[int] = []
        for entry in self._remotes(requester):
            cpu_id, hierarchy = entry[0], entry[1]
            prior = hierarchy.snoop_read_exclusive(line_address)
            if not prior.is_valid:
                continue
            invalidated.append(cpu_id)
            if supplier is None:
                supplier = cpu_id
            if prior in (MesiState.MODIFIED, MesiState.OWNED):
                had_dirty = True
                supplier = cpu_id
        outcome = SnoopOutcome(supplier_cpu=supplier,
                               had_modified_copy=had_dirty,
                               invalidated_cpus=invalidated,
                               fill_state=MesiState.MODIFIED)
        if self.observer is not None:
            self.observer.on_snoop(1, requester, line_address, outcome)
        return outcome
