"""Illinois-MESI snooping write-invalidate protocol.

This module owns the global coherence decisions the bus cannot make
locally: for a given BusRd/BusRdX, which remote cache (if any) supplies
the line, what state every cache ends in, and whether the transfer is
cache-to-cache or from memory.

We model the Illinois variant of MESI (the classic SMP choice, and the
one that maximizes the cache-to-cache transfers SENSS must protect): a
remote cache with *any* valid copy supplies the block, memory supplies
only when no cache has it. A remote MODIFIED supplier also updates
memory (so its state can drop to SHARED).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cache.hierarchy import CacheHierarchy
from ..cache.mesi import MesiState
from ..errors import CoherenceError

_INVALID = MesiState.INVALID
_MODIFIED = MesiState.MODIFIED
_EXCLUSIVE = MesiState.EXCLUSIVE
_SHARED = MesiState.SHARED


class SnoopOutcome:
    """Result of broadcasting a coherence request to all remote caches.

    A ``__slots__`` record (one is built per bus transaction, so it
    stays off the dataclass machinery like :class:`BusTransaction`).
    """

    __slots__ = ("supplier_cpu", "had_modified_copy",
                 "invalidated_cpus", "fill_state")

    def __init__(self, supplier_cpu: Optional[int],
                 had_modified_copy: bool,
                 invalidated_cpus: List[int],
                 fill_state: MesiState):
        self.supplier_cpu = supplier_cpu        # None -> memory supplies
        self.had_modified_copy = had_modified_copy  # dirty line flushed
        self.invalidated_cpus = invalidated_cpus    # caches losing a copy
        self.fill_state = fill_state            # state requester installs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SnoopOutcome(supplier={self.supplier_cpu}, "
                f"dirty={self.had_modified_copy}, "
                f"invalidated={self.invalidated_cpus}, "
                f"fill={self.fill_state})")


class MesiProtocol:
    """Stateless coordinator over the per-CPU cache hierarchies."""

    def __init__(self, hierarchies: Sequence[CacheHierarchy]):
        self._hierarchies = list(hierarchies)
        # Snoops broadcast to every cache but the requester's; build
        # the (cpu_id, hierarchy, l2_sets, offset_bits, num_sets)
        # remote list per requester once instead of filtering on every
        # bus transaction. The L2 tag store and its geometry ride
        # along so the hot snoop loops can probe it directly instead
        # of going through two call layers per remote per miss (the
        # ``_sets`` dict is stable: ``flush`` clears it in place).
        self._remote_lists = [
            [(cpu_id, hierarchy, hierarchy.l2._sets,
              hierarchy.l2._offset_bits, hierarchy.l2._num_sets)
             for cpu_id, hierarchy in enumerate(self._hierarchies)
             if cpu_id != requester]
            for requester in range(len(self._hierarchies))]
        # Optional observability probe (repro.obs.Tracer): sees every
        # snoop outcome before it reaches the bus, pairing supplier /
        # invalidation data with the miss timing the system reports.
        self.observer = None

    def _remotes(self, requester: int):
        return self._remote_lists[requester]

    def bus_read(self, requester: int, line_address: int) -> SnoopOutcome:
        """Remote effects of a read miss (BusRd).

        The remote probe is the L2 tag scan from
        ``SetAssociativeCache.lookup_line`` inlined (touch=False —
        snoops never perturb remote LRU order), with the MESI
        downgrade of ``CacheHierarchy.snoop_read`` applied in place:
        most snoops find nothing, and the two call layers per remote
        per miss dominate the broadcast cost.
        """
        supplier: Optional[int] = None
        had_modified = False
        any_shared = False
        for cpu_id, hierarchy, sets, offset_bits, num_sets \
                in self._remote_lists[requester]:
            block = line_address >> offset_bits
            ways = sets.get(block % num_sets)
            if not ways:
                continue
            tag = block // num_sets
            for line in ways:
                if line.tag == tag and line.state is not _INVALID:
                    prior = line.state
                    if prior is _MODIFIED:
                        line.state = _SHARED
                        had_modified = True
                        supplier = cpu_id  # dirty owner always supplies
                    else:
                        if prior is _EXCLUSIVE:
                            line.state = _SHARED
                        if supplier is None:
                            supplier = cpu_id
                    any_shared = True
                    break
        fill_state = _SHARED if any_shared else _EXCLUSIVE
        outcome = SnoopOutcome(supplier_cpu=supplier,
                               had_modified_copy=had_modified,
                               invalidated_cpus=[],
                               fill_state=fill_state)
        if self.observer is not None:
            self.observer.on_snoop(0, requester, line_address, outcome)
        return outcome

    def bus_read_exclusive(self, requester: int,
                           line_address: int) -> SnoopOutcome:
        """Remote effects of a write miss (BusRdX): fetch + invalidate.

        Same inlined remote probe as :meth:`bus_read`; a hit
        invalidates in place and enforces L1 inclusion through the
        hierarchy (the rare path).
        """
        supplier: Optional[int] = None
        had_modified = False
        invalidated: List[int] = []
        for cpu_id, hierarchy, sets, offset_bits, num_sets \
                in self._remote_lists[requester]:
            block = line_address >> offset_bits
            ways = sets.get(block % num_sets)
            if not ways:
                continue
            tag = block // num_sets
            for line in ways:
                if line.tag == tag and line.state is not _INVALID:
                    prior = line.state
                    line.state = _INVALID
                    hierarchy._enforce_inclusion(line_address)
                    invalidated.append(cpu_id)
                    if supplier is None or prior is _MODIFIED:
                        supplier = cpu_id
                    if prior is _MODIFIED:
                        had_modified = True
                    break
        outcome = SnoopOutcome(supplier_cpu=supplier,
                               had_modified_copy=had_modified,
                               invalidated_cpus=invalidated,
                               fill_state=MesiState.MODIFIED)
        if self.observer is not None:
            self.observer.on_snoop(1, requester, line_address, outcome)
        return outcome

    #: states a requester may upgrade from (MOESI adds OWNED)
    UPGRADABLE_STATES = (MesiState.SHARED,)

    def bus_upgrade(self, requester: int, line_address: int) -> SnoopOutcome:
        """Remote effects of an S->M upgrade: invalidate all sharers."""
        requester_state = self._hierarchies[requester].state_of(line_address)
        if requester_state not in self.UPGRADABLE_STATES:
            raise CoherenceError(
                f"upgrade from state {requester_state} on cpu {requester}")
        invalidated: List[int] = []
        for entry in self._remote_lists[requester]:
            cpu_id, hierarchy = entry[0], entry[1]
            prior = hierarchy.snoop_read_exclusive(line_address)
            if prior.is_valid:
                invalidated.append(cpu_id)
        outcome = SnoopOutcome(supplier_cpu=None,
                               had_modified_copy=False,
                               invalidated_cpus=invalidated,
                               fill_state=MesiState.MODIFIED)
        if self.observer is not None:
            self.observer.on_snoop(2, requester, line_address, outcome)
        return outcome

    # -- invariant checking (used by property tests) ---------------------

    def check_invariants(self, line_address: int) -> None:
        """SWMR: at most one M/E copy (excluding all others); at most
        one OWNED copy, which may coexist only with SHARED copies."""
        states = [h.state_of(line_address) for h in self._hierarchies]
        exclusive_like = [s for s in states
                          if s in (MesiState.MODIFIED, MesiState.EXCLUSIVE)]
        owned = [s for s in states if s is MesiState.OWNED]
        valid = [s for s in states if s.is_valid]
        if len(exclusive_like) > 1:
            raise CoherenceError(
                f"multiple M/E copies of {line_address:#x}: {states}")
        if exclusive_like and len(valid) > 1:
            raise CoherenceError(
                "M/E copy coexists with other copies of "
                f"{line_address:#x}: {states}")
        if len(owned) > 1:
            raise CoherenceError(
                f"multiple OWNED copies of {line_address:#x}: {states}")
        if owned and exclusive_like:
            raise CoherenceError(
                f"OWNED coexists with M/E on {line_address:#x}: "
                f"{states}")
