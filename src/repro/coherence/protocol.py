"""Illinois-MESI snooping write-invalidate protocol.

This module owns the global coherence decisions the bus cannot make
locally: for a given BusRd/BusRdX, which remote cache (if any) supplies
the line, what state every cache ends in, and whether the transfer is
cache-to-cache or from memory.

We model the Illinois variant of MESI (the classic SMP choice, and the
one that maximizes the cache-to-cache transfers SENSS must protect): a
remote cache with *any* valid copy supplies the block, memory supplies
only when no cache has it. A remote MODIFIED supplier also updates
memory (so its state can drop to SHARED).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cache.hierarchy import CacheHierarchy
from ..cache.mesi import MesiState
from ..errors import CoherenceError


@dataclass
class SnoopOutcome:
    """Result of broadcasting a coherence request to all remote caches."""

    supplier_cpu: Optional[int]       # None -> memory supplies
    had_modified_copy: bool           # supplier flushed a dirty line
    invalidated_cpus: List[int]       # caches that lost their copy
    fill_state: MesiState             # state the requester installs


class MesiProtocol:
    """Stateless coordinator over the per-CPU cache hierarchies."""

    def __init__(self, hierarchies: Sequence[CacheHierarchy]):
        self._hierarchies = list(hierarchies)
        # Snoops broadcast to every cache but the requester's; build
        # the (cpu_id, hierarchy) remote list per requester once
        # instead of filtering on every bus transaction.
        self._remote_lists = [
            [(cpu_id, hierarchy)
             for cpu_id, hierarchy in enumerate(self._hierarchies)
             if cpu_id != requester]
            for requester in range(len(self._hierarchies))]
        # Optional observability probe (repro.obs.Tracer): sees every
        # snoop outcome before it reaches the bus, pairing supplier /
        # invalidation data with the miss timing the system reports.
        self.observer = None

    def _remotes(self, requester: int):
        return self._remote_lists[requester]

    def bus_read(self, requester: int, line_address: int) -> SnoopOutcome:
        """Remote effects of a read miss (BusRd)."""
        supplier: Optional[int] = None
        had_modified = False
        any_shared = False
        for cpu_id, hierarchy in self._remotes(requester):
            prior = hierarchy.snoop_read(line_address)
            if not prior.is_valid:
                continue
            any_shared = True
            if supplier is None:
                supplier = cpu_id
            if prior is MesiState.MODIFIED:
                had_modified = True
                supplier = cpu_id  # dirty owner always supplies
        fill_state = MesiState.SHARED if any_shared else MesiState.EXCLUSIVE
        outcome = SnoopOutcome(supplier_cpu=supplier,
                               had_modified_copy=had_modified,
                               invalidated_cpus=[],
                               fill_state=fill_state)
        if self.observer is not None:
            self.observer.on_snoop(0, requester, line_address, outcome)
        return outcome

    def bus_read_exclusive(self, requester: int,
                           line_address: int) -> SnoopOutcome:
        """Remote effects of a write miss (BusRdX): fetch + invalidate."""
        supplier: Optional[int] = None
        had_modified = False
        invalidated: List[int] = []
        for cpu_id, hierarchy in self._remotes(requester):
            prior = hierarchy.snoop_read_exclusive(line_address)
            if not prior.is_valid:
                continue
            invalidated.append(cpu_id)
            if supplier is None:
                supplier = cpu_id
            if prior is MesiState.MODIFIED:
                had_modified = True
                supplier = cpu_id
        outcome = SnoopOutcome(supplier_cpu=supplier,
                               had_modified_copy=had_modified,
                               invalidated_cpus=invalidated,
                               fill_state=MesiState.MODIFIED)
        if self.observer is not None:
            self.observer.on_snoop(1, requester, line_address, outcome)
        return outcome

    #: states a requester may upgrade from (MOESI adds OWNED)
    UPGRADABLE_STATES = (MesiState.SHARED,)

    def bus_upgrade(self, requester: int, line_address: int) -> SnoopOutcome:
        """Remote effects of an S->M upgrade: invalidate all sharers."""
        requester_state = self._hierarchies[requester].state_of(line_address)
        if requester_state not in self.UPGRADABLE_STATES:
            raise CoherenceError(
                f"upgrade from state {requester_state} on cpu {requester}")
        invalidated: List[int] = []
        for cpu_id, hierarchy in self._remotes(requester):
            prior = hierarchy.snoop_read_exclusive(line_address)
            if prior.is_valid:
                invalidated.append(cpu_id)
        outcome = SnoopOutcome(supplier_cpu=None,
                               had_modified_copy=False,
                               invalidated_cpus=invalidated,
                               fill_state=MesiState.MODIFIED)
        if self.observer is not None:
            self.observer.on_snoop(2, requester, line_address, outcome)
        return outcome

    # -- invariant checking (used by property tests) ---------------------

    def check_invariants(self, line_address: int) -> None:
        """SWMR: at most one M/E copy (excluding all others); at most
        one OWNED copy, which may coexist only with SHARED copies."""
        states = [h.state_of(line_address) for h in self._hierarchies]
        exclusive_like = [s for s in states
                          if s in (MesiState.MODIFIED, MesiState.EXCLUSIVE)]
        owned = [s for s in states if s is MesiState.OWNED]
        valid = [s for s in states if s.is_valid]
        if len(exclusive_like) > 1:
            raise CoherenceError(
                f"multiple M/E copies of {line_address:#x}: {states}")
        if exclusive_like and len(valid) > 1:
            raise CoherenceError(
                "M/E copy coexists with other copies of "
                f"{line_address:#x}: {states}")
        if len(owned) > 1:
            raise CoherenceError(
                f"multiple OWNED copies of {line_address:#x}: {states}")
        if owned and exclusive_like:
            raise CoherenceError(
                f"OWNED coexists with M/E on {line_address:#x}: "
                f"{states}")
