"""MSI — the MESI variant without the Exclusive state.

The paper's machine uses MESI (section 7.2). MSI is the classic
ablation: without E, a processor that read a line *alone* still holds
it SHARED, so its first write must issue an upgrade bus transaction
that MESI's silent E->M transition avoids. Comparing the two isolates
how much of the coherence traffic SENSS must protect is attributable
to the protocol choice rather than to sharing itself.
"""

from __future__ import annotations

from ..cache.mesi import MesiState
from .protocol import MesiProtocol, SnoopOutcome


class MsiProtocol(MesiProtocol):
    """MESI with the Exclusive state disabled."""

    def bus_read(self, requester: int, line_address: int) -> SnoopOutcome:
        outcome = super().bus_read(requester, line_address)
        # No E state: even a sole reader installs SHARED, paying an
        # upgrade transaction on its first write.
        if outcome.fill_state is MesiState.EXCLUSIVE:
            return SnoopOutcome(
                supplier_cpu=outcome.supplier_cpu,
                had_modified_copy=outcome.had_modified_copy,
                invalidated_cpus=outcome.invalidated_cpus,
                fill_state=MesiState.SHARED)
        return outcome


def make_protocol(name: str, hierarchies) -> MesiProtocol:
    """Factory used by :class:`repro.smp.system.SmpSystem`."""
    if name == "MESI":
        return MesiProtocol(hierarchies)
    if name == "MSI":
        return MsiProtocol(hierarchies)
    if name == "MOESI":
        from .moesi import MoesiProtocol
        return MoesiProtocol(hierarchies)
    raise ValueError(f"unknown coherence protocol {name!r}")
