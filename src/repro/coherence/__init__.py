"""Snooping write-invalidate coherence protocol (MESI)."""

from .moesi import MoesiProtocol
from .msi import MsiProtocol, make_protocol
from .protocol import MesiProtocol, SnoopOutcome

__all__ = ["MesiProtocol", "MoesiProtocol", "MsiProtocol",
           "SnoopOutcome", "make_protocol"]
