"""System configuration for the SENSS reproduction.

The defaults reproduce Figure 5 of the paper ("Architectural
parameters"), which models a Sun E6000-class SMP:

========================================  =========================
Processor clock frequency                 1 GHz
Separate L1 I- and D-cache                64 KB, 2-way, 32 B line
L1 hit latency                            2 cycles
Integrated L2 cache                       4-way, 64 B line
L2 hit latency                            10 cycles
Hashing throughput                        3.2 GB/s
Hashing latency                           160 cycles
Cache-to-cache latency                    120 cycles (uncontended)
Cache-to-memory latency                   180 cycles
Shared bus                                3.2 GB/s, 100 MHz, 32 B line
AES latency                               80 cycles
AES throughput                            3.2 GB/s
========================================  =========================

All latencies are in CPU cycles of the 1 GHz clock unless noted.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

from .errors import ConfigError

KB = 1024
MB = 1024 * KB


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int
    write_back: bool = True

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.associativity > 0, "associativity must be positive")
        _require(_is_power_of_two(self.line_bytes),
                 "cache line size must be a power of two")
        _require(self.hit_latency >= 0, "hit latency must be non-negative")
        _require(self.size_bytes % (self.associativity * self.line_bytes) == 0,
                 "cache size must be a multiple of associativity * line size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class BusConfig:
    """Shared snooping bus parameters (Figure 5 + section 7.1).

    ``cycle_cpu_cycles`` is the bus cycle expressed in CPU cycles: the
    paper models a 100 MHz bus under a 1 GHz CPU clock, i.e. 10 CPU
    cycles per bus cycle. ``data_lines``/``address_lines``/
    ``control_lines`` reproduce the Sun Gigaplane line counts used for
    the 3.1% bus-line overhead computation in section 7.1.
    """

    bandwidth_gb_s: float = 3.2
    frequency_mhz: int = 100
    line_bytes: int = 32
    cycle_cpu_cycles: int = 10
    cache_to_cache_latency: int = 120
    cache_to_memory_latency: int = 180
    data_lines: int = 256
    address_lines: int = 41
    control_lines: int = 81  # 378 total Gigaplane lines - data - address
    # False = atomic bus (default model); True = split-transaction
    # (separate address/data bus occupancy, closer to the real
    # Gigaplane) — an extension ablation, see bench_ext_split_bus.py.
    split_transaction: bool = False

    def __post_init__(self) -> None:
        _require(self.bandwidth_gb_s > 0, "bus bandwidth must be positive")
        _require(self.cycle_cpu_cycles > 0, "bus cycle must be positive")
        _require(self.cache_to_cache_latency > 0,
                 "cache-to-cache latency must be positive")
        _require(self.cache_to_memory_latency > 0,
                 "cache-to-memory latency must be positive")

    @property
    def total_lines(self) -> int:
        return self.data_lines + self.address_lines + self.control_lines


@dataclass(frozen=True)
class CryptoConfig:
    """Latency/throughput model of the SHU crypto hardware (Figure 5)."""

    aes_latency: int = 80
    aes_throughput_gb_s: float = 3.2
    hash_latency: int = 160
    hash_throughput_gb_s: float = 3.2
    key_bits: int = 128

    def __post_init__(self) -> None:
        _require(self.aes_latency > 0, "AES latency must be positive")
        _require(self.key_bits in (128, 192, 256),
                 "AES key size must be 128, 192 or 256 bits")


@dataclass(frozen=True)
class SenssConfig:
    """SENSS security-layer parameters (sections 4, 5, 7.1).

    ``auth_interval`` is the number of cache-to-cache bus transactions
    between MAC broadcasts (paper default for Figure 6/7/8 is 100;
    Figure 9 sweeps 1/10/32/100). ``num_masks`` is the mask array size;
    ``None`` models the "perfect" (infinite) supply of Figure 6.
    ``max_processors``/``max_groups`` size the SHU tables (section 7.1:
    32 processors, 1024 groups).
    """

    enabled: bool = True
    auth_interval: int = 100
    num_masks: Optional[int] = None
    max_processors: int = 32
    max_groups: int = 1024
    counter_bits: int = 8
    sender_xor_cycles: int = 1
    receiver_lookup_xor_cycles: int = 2

    def __post_init__(self) -> None:
        _require(self.auth_interval >= 1,
                 "authentication interval must be >= 1")
        _require(self.num_masks is None or self.num_masks >= 1,
                 "mask count must be >= 1 (or None for perfect)")
        _require(1 <= self.counter_bits <= 32,
                 "counter field is 0..32 bits; experiments use 8")

    @property
    def per_message_overhead_cycles(self) -> int:
        """Extra bus delay per message: 1 sender + 2 receiver cycles."""
        return self.sender_xor_cycles + self.receiver_lookup_xor_cycles


@dataclass(frozen=True)
class MemProtectConfig:
    """Cache-to-memory protection (section 6 / Figure 10)."""

    encryption_enabled: bool = False
    integrity_enabled: bool = False
    pad_cache_entries: Optional[int] = None  # None = perfect SNC (sec 7.7)
    hash_tree_arity: int = 4
    lazy_verification: bool = False  # CHash (False) vs LHash-style (True)
    pad_protocol: str = "write-invalidate"  # or "write-update" (sec 6.1)
    # "otp" = fast memory encryption (pads overlap the fetch, sec 2.1);
    # "direct" = decrypt-after-fetch, the naive baseline whose ~17%
    # slowdown motivated the OTP schemes [25, 29].
    encryption_mode: str = "otp"

    def __post_init__(self) -> None:
        _require(self.pad_protocol in ("write-invalidate", "write-update"),
                 "pad protocol must be write-invalidate or write-update")
        _require(self.hash_tree_arity >= 2, "hash tree arity must be >= 2")
        _require(self.encryption_mode in ("otp", "direct"),
                 "encryption mode must be otp or direct")


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of a simulated (SENSS) SMP machine."""

    num_processors: int = 4
    cpu_ghz: float = 1.0
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * KB, associativity=2, line_bytes=32, hit_latency=2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=1 * MB, associativity=4, line_bytes=64, hit_latency=10))
    bus: BusConfig = field(default_factory=BusConfig)
    crypto: CryptoConfig = field(default_factory=CryptoConfig)
    senss: SenssConfig = field(default_factory=SenssConfig)
    memprotect: MemProtectConfig = field(default_factory=MemProtectConfig)
    dram_access_ns: int = 80
    coherence_protocol: str = "MESI"  # or "MSI" / "MOESI" (ablations)
    # Engine backend executing run(): "scalar" (pure-python spec),
    # "vector" (numpy batch windows, bit-identical, needs the
    # repro[vector] extra) or "auto" (vector when numpy is importable,
    # scalar otherwise; see repro.smp.engine).
    engine: str = "auto"

    def __post_init__(self) -> None:
        _require(self.coherence_protocol in ("MESI", "MSI", "MOESI"),
                 "coherence protocol must be MESI, MSI or MOESI")
        _require(self.engine in ("auto", "scalar", "vector"),
                 "engine must be auto, scalar or vector")
        _require(self.num_processors >= 1, "need at least one processor")
        _require(self.num_processors <= self.senss.max_processors,
                 "more processors than the SHU bit matrix supports")
        _require(self.l2.line_bytes >= self.l1.line_bytes,
                 "L2 line must be at least as large as L1 line")

    @property
    def max_masks(self) -> int:
        """Maximum useful mask count: AES latency / bus cycle (sec 4.4).

        For the Figure 5 machine this is 80 / 10 = 8.
        """
        return -(-self.crypto.aes_latency // self.bus.cycle_cpu_cycles)

    def with_l2_size(self, size_bytes: int) -> "SystemConfig":
        """Return a copy with a different L2 capacity (Figure 6/8 sweeps)."""
        return replace(self, l2=replace(self.l2, size_bytes=size_bytes))

    def with_processors(self, count: int) -> "SystemConfig":
        return replace(self, num_processors=count)

    def with_auth_interval(self, interval: int) -> "SystemConfig":
        return replace(self, senss=replace(self.senss,
                                           auth_interval=interval))

    def with_masks(self, num_masks: Optional[int]) -> "SystemConfig":
        return replace(self, senss=replace(self.senss, num_masks=num_masks))

    def with_senss(self, enabled: bool) -> "SystemConfig":
        return replace(self, senss=replace(self.senss, enabled=enabled))

    def with_memprotect(self, **kwargs) -> "SystemConfig":
        return replace(self, memprotect=replace(self.memprotect, **kwargs))

    def with_protocol(self, name: str) -> "SystemConfig":
        return replace(self, coherence_protocol=name)

    def with_engine(self, name: str) -> "SystemConfig":
        """Return a copy selecting an engine backend (repro.smp.engine)."""
        return replace(self, engine=name)

    def describe(self) -> str:
        """Render the Figure 5 parameter table for bench headers."""
        rows = [
            ("Processor clock frequency", f"{self.cpu_ghz:g} GHz"),
            ("Processors", str(self.num_processors)),
            ("L1 I/D cache", f"{self.l1.size_bytes // KB}KB, "
                             f"{self.l1.associativity}-way, "
                             f"{self.l1.line_bytes}B line"),
            ("L1 hit latency", f"{self.l1.hit_latency} cycles"),
            ("L2 cache", f"{self.l2.size_bytes // MB}MB, "
                         f"{self.l2.associativity}-way, "
                         f"{self.l2.line_bytes}B line"),
            ("L2 hit latency", f"{self.l2.hit_latency} cycles"),
            ("Cache-to-cache latency",
             f"{self.bus.cache_to_cache_latency} cycles (uncontended)"),
            ("Cache-to-memory latency",
             f"{self.bus.cache_to_memory_latency} cycles"),
            ("Shared bus", f"{self.bus.bandwidth_gb_s:g} GB/s, "
                           f"{self.bus.frequency_mhz}MHz, "
                           f"{self.bus.line_bytes}B line"),
            ("AES latency", f"{self.crypto.aes_latency} cycles"),
            ("AES throughput", f"{self.crypto.aes_throughput_gb_s:g} GB/s"),
            ("Hashing latency", f"{self.crypto.hash_latency} cycles"),
            ("SENSS", "enabled" if self.senss.enabled else "disabled"),
            ("Auth interval",
             f"{self.senss.auth_interval} bus transactions"),
            ("Masks", "perfect" if self.senss.num_masks is None
             else str(self.senss.num_masks)),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


#: section name -> nested config dataclass, for wire round-trips
_NESTED_SECTIONS = {
    "l1": CacheConfig,
    "l2": CacheConfig,
    "bus": BusConfig,
    "crypto": CryptoConfig,
    "senss": SenssConfig,
    "memprotect": MemProtectConfig,
}


def config_to_dict(config: SystemConfig) -> dict:
    """Serialize a config to plain JSON-safe dicts (wire format).

    The output round-trips through :func:`config_from_dict`; it is the
    shape ``repro.serve`` jobs carry per sweep point.
    """
    return asdict(config)


def _section_from_dict(cls, name: str, payload) -> object:
    if not isinstance(payload, dict):
        raise ConfigError(f"config section {name!r} must be an object, "
                          f"got {type(payload).__name__}")
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise ConfigError(f"config section {name!r} has unknown "
                          f"fields {sorted(unknown)}")
    return cls(**payload)


def config_from_dict(payload: dict) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its dict serialization.

    Accepts partial dicts — omitted fields (and omitted nested
    sections) take their defaults, so clients may send just the knobs
    they changed. Unknown field names raise :class:`ConfigError`
    (mapped to HTTP 400 by the service) rather than being silently
    dropped: a typoed knob must not simulate the wrong machine.
    """
    if not isinstance(payload, dict):
        raise ConfigError("config must be an object, "
                          f"got {type(payload).__name__}")
    allowed = {f.name for f in fields(SystemConfig)}
    unknown = set(payload) - allowed
    if unknown:
        raise ConfigError(f"config has unknown fields {sorted(unknown)}")
    kwargs = {}
    for name, value in payload.items():
        section = _NESTED_SECTIONS.get(name)
        kwargs[name] = value if section is None else \
            _section_from_dict(section, name, value)
    try:
        return SystemConfig(**kwargs)
    except TypeError as exc:
        raise ConfigError(f"invalid config: {exc}") from None


def e6000_config(num_processors: int = 4,
                 l2_mb: int = 1,
                 senss_enabled: bool = True,
                 auth_interval: int = 100) -> SystemConfig:
    """The paper's default machine (Figure 5) with common knobs exposed."""
    config = SystemConfig(num_processors=num_processors)
    config = config.with_l2_size(l2_mb * MB)
    config = config.with_auth_interval(auth_interval)
    return config.with_senss(senss_enabled)
