"""Main memory model.

Timing is folded into the bus's cache-to-memory latency (Figure 5: 80 ns
DRAM -> 180 ns requester-visible latency including control delay), so
this module is primarily the *functional* backing store used by the
functional SENSS mode and the memory-protection layer: line-granular
byte storage plus write counting for pad sequence numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import SimulationError


class MainMemory:
    """Line-granular byte-addressable backing store."""

    def __init__(self, line_bytes: int = 64):
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise SimulationError("line size must be a power of two")
        self.line_bytes = line_bytes
        self._lines: Dict[int, bytes] = {}
        self._write_counts: Dict[int, int] = {}

    def _align(self, address: int) -> int:
        return address & ~(self.line_bytes - 1)

    def read_line(self, address: int) -> bytes:
        """Read the full line containing ``address`` (zero-filled)."""
        return self._lines.get(self._align(address),
                               bytes(self.line_bytes))

    def write_line(self, address: int, data: bytes) -> None:
        if len(data) != self.line_bytes:
            raise SimulationError(
                f"line write must be {self.line_bytes} bytes, "
                f"got {len(data)}")
        line = self._align(address)
        self._lines[line] = bytes(data)
        self._write_counts[line] = self._write_counts.get(line, 0) + 1

    def write_count(self, address: int) -> int:
        """How many times this line was written (pad sequence source)."""
        return self._write_counts.get(self._align(address), 0)

    def resident_lines(self) -> int:
        return len(self._lines)

    def corrupt_line(self, address: int, data: Optional[bytes] = None) -> None:
        """Adversarially overwrite a line WITHOUT bumping the write count.

        Models physical memory tampering (section 1): a legitimate write
        goes through ``write_line``; this back door is used by attack
        tests to verify that integrity checking catches the change.
        """
        line = self._align(address)
        if data is None:
            current = bytearray(self.read_line(line))
            current[0] ^= 0xFF
            data = bytes(current)
        if len(data) != self.line_bytes:
            raise SimulationError("corrupt data must be one line")
        self._lines[line] = bytes(data)
