"""Main memory substrate."""

from .dram import MainMemory

__all__ = ["MainMemory"]
