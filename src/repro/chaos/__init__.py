"""Deterministic chaos harness for the serve plane (``repro chaos``).

SENSS's claim is correctness under an active adversary on the bus;
this package makes the *service* above the simulator earn the same
kind of claim. From a single seed it builds a :class:`ChaosPlan` —
which faults hit which sweep points — and drives a real ``repro
serve`` subprocess through them:

- ``worker-kill`` — a worker process SIGKILLs itself mid-point
  (exercises BrokenProcessPool recovery + pool respawn + retry);
- ``point-hang`` — a point sleeps past the server's
  ``--point-timeout`` (exercises the watchdog deadline +
  kill-and-respawn);
- ``cache-corrupt`` — a result-cache entry is garbled on disk
  (exercises checksum quarantine + re-execution);
- ``server-restart`` — the server is SIGKILLed mid-job and
  relaunched with ``--resume`` (exercises the job journal);
- ``client-drop`` — the NDJSON progress stream is severed mid-job
  (exercises the client's resumable stream).

Worker-side faults are injected through one env-gated seam in
:func:`repro.sim.sweep._run_point_timed` (``REPRO_CHAOS_PLAN`` names
the plan file; a marker directory makes each fault fire exactly
once), so production runs pay a single dict lookup.

The invariant the harness asserts (docs/resilience.md): **every
completed job's results — and recordings, byte-for-byte — are
identical to a clean in-process** :func:`~repro.sim.sweep.run_sweep`.
Faults may cost retries and restarts; they may never change what the
service computes.
"""

from .harness import ChaosReport, run_chaos
from .plan import FAULT_KINDS, ChaosPlan, build_plan

__all__ = [
    "FAULT_KINDS",
    "ChaosPlan",
    "ChaosReport",
    "build_plan",
    "run_chaos",
]
