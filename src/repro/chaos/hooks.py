"""Worker-side fault injection: the receiving end of a chaos plan.

:func:`apply_worker_faults` is called by
:func:`repro.sim.sweep._run_point_timed` (and the recording runner)
at the top of every point execution, but only when the
``REPRO_CHAOS_PLAN`` environment variable names a plan file — the
production path pays one dict lookup and never imports this module.

Each fault fires **exactly once** across all workers and all server
restarts: before acting, the hook claims a marker file
(``O_CREAT | O_EXCL`` — atomic on every platform we run on) named
after the fault in the plan's marker directory. Whichever worker
process claims it performs the fault; every later execution of the
same point runs clean. That is what makes chaos runs terminate: the
retry of a killed point succeeds, the resumed job's points run to
completion.

Faults:

- ``worker-kill`` — ``SIGKILL`` to our own process, mid-point. The
  pool sees a vanished worker (``BrokenProcessPool``); the server
  must respawn the pool and retry the point.
- ``point-hang`` — sleep far past the server's ``--point-timeout``.
  The watchdog must declare the point dead, kill the pool and retry.
  (The sleeping process is killed with the pool, so the sleep never
  actually runs to completion.)
"""

from __future__ import annotations

import errno
import os
import signal
import time
from typing import Optional

from .plan import ChaosPlan

#: cached (path, plan) so a warm worker parses the plan file once
_CACHED: Optional[tuple] = None


def _load_plan() -> Optional[ChaosPlan]:
    global _CACHED
    path = os.environ.get("REPRO_CHAOS_PLAN")
    if not path:
        return None
    if _CACHED is not None and _CACHED[0] == path:
        return _CACHED[1]
    try:
        plan = ChaosPlan.load(path)
    except (OSError, ValueError, KeyError):
        return None  # plan vanished or malformed: run clean
    _CACHED = (path, plan)
    return plan


def _claim(marker_dir: str, name: str) -> bool:
    """Atomically claim a fire-once marker; True when we won it."""
    try:
        os.makedirs(marker_dir, exist_ok=True)
        handle = os.open(os.path.join(marker_dir, name),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError as exc:
        if exc.errno == errno.EEXIST:
            return False  # someone (possibly our past life) fired it
        return False  # unclaimable marker dir: fail safe, run clean
    os.write(handle, str(os.getpid()).encode())
    os.close(handle)
    return True


def apply_worker_faults(point) -> None:
    """Fire any worker-side fault targeting this point, at most once
    per fault across the whole chaos run."""
    plan = _load_plan()
    if plan is None:
        return
    from ..sim.sweep import point_key
    key = point_key(point)
    for fault in plan.worker_faults():
        if fault.get("point") != key:
            continue
        kind = str(fault["kind"])
        if not _claim(plan.marker_dir, f"{kind}-{key}"):
            continue
        if kind == "worker-kill":
            # Die the way an OOM kill looks to the pool: no cleanup,
            # no exception, the process is simply gone.
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "point-hang":
            # Outlive any sane deadline; the supervisor's pool
            # restart kills this process long before it wakes.
            time.sleep(float(fault.get("hang_s", 120.0)))
