"""Chaos plans: which fault hits which point, derived from a seed.

A plan is a plain JSON document so it crosses the process boundary to
the serve subprocess and its workers through one environment variable
(``REPRO_CHAOS_PLAN`` = path to the plan file). Target selection is a
pure function of ``(seed, fault kinds, point keys)`` — re-running the
harness with the same seed injects the same faults into the same
points, which is what makes a chaos failure reproducible.

Worker-side faults (``worker-kill``, ``point-hang``) carry the target
point's :func:`~repro.sim.sweep.point_key`; the worker hook matches
on it. Harness-side faults (``server-restart``, ``cache-corrupt``,
``client-drop``) are executed by the orchestrator itself and carry no
worker payload — they appear in the plan for the record.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: every fault the harness knows how to inject
FAULT_KINDS = ("worker-kill", "point-hang", "cache-corrupt",
               "server-restart", "client-drop")

#: faults injected inside a worker process via the sweep-runner seam
WORKER_FAULT_KINDS = ("worker-kill", "point-hang")

#: how long a hung point sleeps — must dwarf any sane --point-timeout
DEFAULT_HANG_S = 120.0


@dataclass
class ChaosPlan:
    """The faults one chaos run will inject."""

    seed: int
    marker_dir: str
    faults: List[Dict[str, object]] = field(default_factory=list)

    def worker_faults(self) -> List[Dict[str, object]]:
        return [fault for fault in self.faults
                if fault["kind"] in WORKER_FAULT_KINDS]

    def kinds(self) -> List[str]:
        return sorted({str(fault["kind"]) for fault in self.faults})

    def targets(self, kind: str) -> List[str]:
        return [str(fault["point"]) for fault in self.faults
                if fault["kind"] == kind and "point" in fault]

    def to_dict(self) -> dict:
        return {"seed": self.seed, "marker_dir": self.marker_dir,
                "faults": self.faults}

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosPlan":
        return cls(seed=int(payload["seed"]),
                   marker_dir=str(payload["marker_dir"]),
                   faults=list(payload.get("faults", [])))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), sort_keys=True,
                                   indent=1))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChaosPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


def build_plan(seed: int, point_keys: Sequence[str],
               kinds: Sequence[str], marker_dir: Union[str, Path],
               hang_s: float = DEFAULT_HANG_S) -> ChaosPlan:
    """Assign each requested fault kind a deterministic target point.

    One fault per kind; targets are drawn without replacement where
    possible (a point both killed and hung would conflate the two
    recovery paths being tested), falling back to reuse when there
    are more fault kinds than points.
    """
    unknown = sorted(set(kinds) - set(FAULT_KINDS))
    if unknown:
        raise ValueError(
            f"unknown fault kinds {unknown}; "
            f"choose from {sorted(FAULT_KINDS)}")
    if not point_keys:
        raise ValueError("chaos plan needs at least one point")
    rng = random.Random(f"chaos-plan:{seed}")
    pool = list(point_keys)
    rng.shuffle(pool)
    plan = ChaosPlan(seed=seed, marker_dir=str(marker_dir))
    cursor = 0
    # Deterministic order regardless of caller's kind ordering.
    for kind in sorted(set(kinds), key=FAULT_KINDS.index):
        fault: Dict[str, object] = {"kind": kind}
        if kind in WORKER_FAULT_KINDS or kind == "cache-corrupt":
            fault["point"] = pool[cursor % len(pool)]
            cursor += 1
        if kind == "point-hang":
            fault["hang_s"] = hang_s
        plan.faults.append(fault)
    return plan


def _point_keys(points) -> List[str]:
    from ..sim.sweep import point_key
    return [point_key(point) for point in points]


def plan_for_points(seed: int, points, kinds: Sequence[str],
                    marker_dir: Union[str, Path],
                    hang_s: float = DEFAULT_HANG_S,
                    ) -> ChaosPlan:
    """:func:`build_plan` over SweepPoints instead of raw keys."""
    return build_plan(seed, _point_keys(points), kinds, marker_dir,
                      hang_s=hang_s)


def describe_plan(plan: ChaosPlan,
                  key_to_index: Optional[Dict[str, int]] = None
                  ) -> List[str]:
    """Human-readable fault lines for logs and the CLI report."""
    lines = []
    for fault in plan.faults:
        kind = fault["kind"]
        target = fault.get("point")
        if target is None:
            lines.append(f"{kind}: orchestrator-level")
            continue
        where = f"point {key_to_index[target]}" \
            if key_to_index and target in key_to_index \
            else f"key {str(target)[:12]}…"
        lines.append(f"{kind}: {where}")
    return lines
