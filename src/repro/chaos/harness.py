"""The chaos orchestrator: drive a real server through a fault plan.

:func:`run_chaos` is what ``python -m repro chaos`` runs. One
invocation:

1. computes the **clean reference** — an in-process, chaos-free
   :func:`~repro.sim.sweep.run_sweep` over the same points (plus
   reference recordings when requested);
2. launches a real ``repro serve`` subprocess with a fresh cache,
   a state dir (journal on), a point deadline, and the plan exported
   through ``REPRO_CHAOS_PLAN``;
3. runs one **leg** per orchestrator-level fault — severing the
   progress stream mid-job (``client-drop``), SIGKILLing the server
   mid-job and relaunching it with ``--resume`` (``server-restart``),
   garbling a cache entry on disk (``cache-corrupt``) — while
   worker-level faults (``worker-kill``, ``point-hang``) fire from
   inside the workers on their target points;
4. asserts the **invariant**: every completed job's results equal
   the clean reference exactly (and recording artifacts match
   byte-for-byte), and the expected recovery machinery actually
   engaged (worker restarts counted, journal replayed, corrupt entry
   quarantined).

Determinism note: fault *targets* are a pure function of the seed.
The server-restart leg races by nature — the job can finish before
the kill lands. The harness detects that (the resumed server 404s
the finished job), resubmits the same points (pure cache hits, still
identity-checked) and reports the leg as ``raced`` rather than
failing; the deterministic mid-crash resume path is pinned by
tests/serve/test_resilience.py at the scheduler level.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..config import e6000_config
from ..errors import ReproError, ServeError
from ..serve.client import ServeClient
from ..serve.jobs import result_to_dict
from ..sim.sweep import ResultCache, SweepPoint, point_key, run_sweep
from .plan import ChaosPlan, describe_plan, plan_for_points


class ChaosError(ReproError):
    """The harness could not complete a leg (distinct from the
    invariant failing, which is reported, not raised)."""


@dataclass
class ChaosReport:
    """What happened, what was asserted, and whether it held."""

    seed: int
    faults: List[str]
    plan_lines: List[str]
    legs: List[Dict[str, object]] = field(default_factory=list)
    checks: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(check["ok"] for check in self.checks)

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append({"name": name, "ok": bool(ok),
                            "detail": detail})

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": self.faults,
                "plan": self.plan_lines, "legs": self.legs,
                "checks": self.checks, "metrics": self.metrics,
                "ok": self.ok}

    def format(self) -> str:
        lines = [f"chaos run (seed {self.seed}): "
                 f"faults {', '.join(self.faults)}"]
        lines += [f"  plan: {line}" for line in self.plan_lines]
        for leg in self.legs:
            lines.append(f"  leg {leg['name']}: {leg['outcome']}")
        for check in self.checks:
            mark = "ok " if check["ok"] else "FAIL"
            detail = f" — {check['detail']}" if check["detail"] else ""
            lines.append(f"  [{mark}] {check['name']}{detail}")
        lines.append("invariant holds: results identical to clean run"
                     if self.ok else "INVARIANT VIOLATED")
        return "\n".join(lines)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _repo_env(plan_path: Path) -> Dict[str, str]:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing \
        else src_root + os.pathsep + existing
    env["REPRO_CHAOS_PLAN"] = str(plan_path)
    return env


class _Server:
    """One ``repro serve`` subprocess under harness control."""

    def __init__(self, port: int, workers: int, cache_dir: Path,
                 state_dir: Path, record_dir: Optional[Path],
                 point_timeout: float, env: Dict[str, str],
                 log_path: Path):
        self.port = port
        self.workers = workers
        self.cache_dir = cache_dir
        self.state_dir = state_dir
        self.record_dir = record_dir
        self.point_timeout = point_timeout
        self.env = env
        self.log_path = log_path
        self.process: Optional[subprocess.Popen] = None

    def launch(self, resume: bool = False) -> None:
        command = [sys.executable, "-m", "repro", "serve",
                   "--host", "127.0.0.1", "--port", str(self.port),
                   "--workers", str(self.workers),
                   "--cache-dir", str(self.cache_dir),
                   "--state-dir", str(self.state_dir),
                   "--point-timeout", str(self.point_timeout),
                   "--no-warmup"]
        if self.record_dir is not None:
            command += ["--record-dir", str(self.record_dir)]
        if resume:
            command.append("--resume")
        log = open(self.log_path, "a")
        # New session: the server, its fork server and its workers
        # share a process group, so kill()/terminate() can reap the
        # whole tree even after a SIGKILL orphans the descendants.
        self.process = subprocess.Popen(
            command, env=self.env, stdout=log, stderr=log,
            start_new_session=True)
        log.close()

    def wait_healthy(self, client: ServeClient,
                     timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process is not None \
                    and self.process.poll() is not None:
                raise ChaosError(
                    "serve subprocess exited with "
                    f"{self.process.returncode}; log: "
                    f"{self.log_path}")
            try:
                client.healthz()
                return
            except (OSError, ServeError):
                time.sleep(0.1)
        raise ChaosError(
            f"server never became healthy; log: {self.log_path}")

    def _kill_group(self) -> None:
        """Reap the whole process group — workers included."""
        try:
            os.killpg(self.process.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass

    def kill(self) -> None:
        """SIGKILL — the crash the journal exists for."""
        if self.process is not None:
            self._kill_group()
            self.process.wait()
            self.process = None

    def terminate(self, timeout: float = 60.0) -> None:
        if self.process is None:
            return
        self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            pass
        # Whatever drain left behind (hung chaos workers, the fork
        # server) goes with the group.
        self._kill_group()
        if self.process.poll() is None:
            self.process.wait()
        self.process = None


def _build_points(workload: str, cpus: int, scale: float,
                  count: int) -> List[SweepPoint]:
    config = e6000_config(num_processors=cpus)
    return [SweepPoint(workload, config, scale=scale, seed=seed)
            for seed in range(count)]


def _results_match(served: Sequence[Optional[dict]],
                   reference: Sequence[dict]) -> bool:
    return list(served) == list(reference)


def _corrupt_cache_entry(cache_dir: Path, key: str) -> Path:
    """Garble one cache entry in place (bit rot, torn write...) so
    the next load fails checksum/parse and quarantines it."""
    path = cache_dir / f"{key}.json"
    data = bytearray(path.read_bytes() if path.exists()
                     else b"{}")
    garbled = b"\x00CHAOS\x00" + bytes(data[::-1])
    path.write_bytes(garbled)
    return path


def run_chaos(workload: str = "fft", cpus: int = 2,
              scale: float = 0.05, points: int = 4, seed: int = 0,
              faults: Optional[Sequence[str]] = None,
              workers: int = 2, point_timeout: float = 5.0,
              record: bool = False,
              work_dir: Optional[str] = None) -> ChaosReport:
    """Run one seeded chaos campaign; returns the report (the CLI
    exits non-zero when ``report.ok`` is False)."""
    kinds = list(faults) if faults else ["worker-kill", "point-hang",
                                         "cache-corrupt",
                                         "server-restart",
                                         "client-drop"]
    sweep = _build_points(workload, cpus, scale, max(1, points))
    keys = [point_key(point) for point in sweep]
    key_to_index = {key: index for index, key in enumerate(keys)}

    cleanup = None
    if work_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        root = Path(cleanup.name)
    else:
        root = Path(work_dir)
        root.mkdir(parents=True, exist_ok=True)
    try:
        return _run(root, sweep, keys, key_to_index, kinds, seed,
                    workers, point_timeout, record)
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _run(root: Path, sweep: List[SweepPoint], keys: List[str],
         key_to_index: Dict[str, int], kinds: List[str], seed: int,
         workers: int, point_timeout: float,
         record: bool) -> ChaosReport:
    plan = plan_for_points(seed, sweep, kinds, root / "markers",
                           hang_s=max(60.0, point_timeout * 20))
    plan_path = plan.save(root / "chaos-plan.json")
    report = ChaosReport(seed=seed, faults=sorted(set(kinds)),
                         plan_lines=describe_plan(plan, key_to_index))

    # 1. Clean reference, fully outside the chaos env.
    clean_cache = ResultCache(root / "clean-cache")
    clean_record_dir = root / "clean-recordings" if record else None
    reference_results = run_sweep(
        sweep, cache=clean_cache,
        record_dir=clean_record_dir)
    reference = [result_to_dict(result)
                 for result in reference_results]

    # 2. The server under test: fresh cache, journal on, chaos
    #    plan exported to its workers.
    server = _Server(
        port=_free_port(), workers=workers,
        cache_dir=root / "serve-cache", state_dir=root / "state",
        record_dir=(root / "serve-recordings") if record else None,
        point_timeout=point_timeout, env=_repo_env(plan_path),
        log_path=root / "serve.log")
    client = ServeClient("127.0.0.1", server.port, timeout=120.0,
                         retries=4, backoff_s=0.2, seed=seed)
    server.launch()
    try:
        server.wait_healthy(client)
        ready = client.readyz()
        report.check("readyz", ready.get("ready") is True,
                     str(ready))

        # Leg 1: the worker-fault job. worker-kill / point-hang fire
        # inside workers while this job runs; with client-drop
        # requested, the progress stream is severed mid-job and must
        # resume.
        job = client.submit(sweep, tenant="chaos")
        if "client-drop" in kinds:
            _sever_stream_once(client, server.port, job["id"])
            report.legs.append({"name": "client-drop",
                                "outcome": "stream severed mid-job; "
                                           "client resumed"})
        final = client.wait(job["id"])
        served = [None if r is None else result_to_dict(r)
                  for r in client.results(job["id"])]
        report.legs.append({
            "name": "worker-faults",
            "outcome": f"job {job['id']} -> {final['state']}"})
        report.check("worker-faults job completes",
                     final["state"] == "done",
                     f"state={final['state']} "
                     f"errors={client.errors(job['id'])}")
        report.check("worker-faults results identical",
                     _results_match(served, reference))
        # Counter checks snapshot NOW: the server-restart leg below
        # SIGKILLs this server instance, and the resumed process
        # starts its in-memory counters from zero (the journal
        # persists work, not metrics).
        first_counters = client.metrics()["counters"]
        if "worker-kill" in kinds or "point-hang" in kinds:
            report.check(
                "worker pool respawned",
                first_counters["serve.worker_restarts"] >= 1,
                f"serve.worker_restarts="
                f"{first_counters['serve.worker_restarts']}")
            report.check(
                "points retried",
                first_counters["serve.retries"] >= 1,
                f"serve.retries={first_counters['serve.retries']}")

        # Leg 2: kill the server mid-job, relaunch with --resume.
        if "server-restart" in kinds:
            _restart_leg(report, server, client, sweep)

        # Leg 3: corrupt a cache entry, resubmit — the server must
        # quarantine the bad file and recompute the point.
        if "cache-corrupt" in kinds:
            _corrupt_leg(report, server, client, plan, sweep,
                         reference, key_to_index)

        # Recordings: byte-for-byte identity, on disk and over the
        # wire.
        if record:
            _record_leg(report, client, sweep, server.record_dir,
                        clean_record_dir)

        metrics = client.metrics()
        # Counters are per-process and reset when the server-restart
        # leg replaces the server; report the per-key max across both
        # lives — a lower bound on campaign totals that keeps
        # "did a restart/retry happen at all" answerable from JSON.
        report.metrics = {
            "counters": {
                key: max(value, first_counters.get(key, 0))
                for key, value in metrics["counters"].items()},
            "resilience": metrics["resilience"],
        }
        quarantined = max(
            metrics["counters"]["serve.quarantined_points"],
            first_counters["serve.quarantined_points"])
        report.check("no points quarantined (faults are transient)",
                     quarantined == 0,
                     f"serve.quarantined_points={quarantined}")
    finally:
        server.terminate()
    return report


def _sever_stream_once(client: ServeClient, port: int,
                       job_id: str) -> None:
    """Open the NDJSON stream raw, read a line or two, slam the
    connection shut — the mid-stream drop the resumable client must
    survive."""
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=30.0) as sock:
        ServeClient._send_request(
            sock, "GET", f"/v1/jobs/{job_id}/events", None)
        handle = sock.makefile("rb")
        ServeClient._read_head(handle)
        handle.readline()  # one event, then die mid-stream
        # RST instead of FIN: the harshest flavour of connection loss.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))


def _restart_leg(report: ChaosReport, server: _Server,
                 client: ServeClient,
                 sweep: List[SweepPoint]) -> None:
    # A second tenant's job, submitted cold so some points are still
    # pending when the kill lands (the first leg warmed the cache for
    # tenant "chaos"'s points — resubmitting the same points would
    # finish instantly; instead shift every seed so this job has real
    # work outstanding).
    shifted = [SweepPoint(point.workload, point.config,
                          scale=point.scale,
                          seed=point.seed + 1000)
               for point in sweep]
    shifted_reference = [
        result_to_dict(result)
        for result in run_sweep(shifted,
                                cache=ResultCache(
                                    server.cache_dir.parent
                                    / "clean-cache-restart"))]
    job = client.submit(shifted, tenant="restart")
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        snapshot = client.job(job["id"])
        if snapshot["completed"] >= 1 or snapshot["state"] in (
                "done", "failed", "cancelled"):
            break
        time.sleep(0.05)
    server.kill()
    server.launch(resume=True)
    server.wait_healthy(client)
    try:
        final = client.wait(job["id"])
        raced = False
    except ServeError as exc:
        if exc.status != 404:
            raise
        # The job finished (terminal in the journal) before the kill
        # landed — nothing to resume. Resubmit: every point is a
        # cache hit, and identity is still asserted.
        raced = True
        job = client.submit(shifted, tenant="restart")
        final = client.wait(job["id"])
    served = [None if r is None else result_to_dict(r)
              for r in client.results(job["id"])]
    metrics = client.metrics()
    outcome = ("raced (job finished before kill); resubmitted as "
               f"{job['id']}" if raced
               else f"resumed {job['id']} -> {final['state']}")
    report.legs.append({"name": "server-restart",
                        "outcome": outcome, "raced": raced})
    report.check("server-restart job completes",
                 final["state"] == "done",
                 f"state={final['state']}")
    report.check("server-restart results identical",
                 _results_match(served, shifted_reference))
    if not raced:
        report.check(
            "journal replayed on --resume",
            metrics["counters"]["serve.journal_replays"] >= 1,
            f"serve.journal_replays="
            f"{metrics['counters']['serve.journal_replays']}")


def _corrupt_leg(report: ChaosReport, server: _Server,
                 client: ServeClient, plan: ChaosPlan,
                 sweep: List[SweepPoint], reference: List[dict],
                 key_to_index: Dict[str, int]) -> None:
    targets = plan.targets("cache-corrupt")
    key = targets[0]
    _corrupt_cache_entry(server.cache_dir, key)
    job = client.submit(sweep, tenant="corrupt")
    final = client.wait(job["id"])
    served = [None if r is None else result_to_dict(r)
              for r in client.results(job["id"])]
    quarantine_marker = server.cache_dir / f"{key}.json.corrupt"
    report.legs.append({
        "name": "cache-corrupt",
        "outcome": f"entry for point {key_to_index[key]} garbled; "
                   f"job {job['id']} -> {final['state']}"})
    report.check("cache-corrupt job completes",
                 final["state"] == "done",
                 f"state={final['state']}")
    report.check("cache-corrupt results identical",
                 _results_match(served, reference))
    report.check("corrupt entry quarantined on disk",
                 quarantine_marker.exists(),
                 str(quarantine_marker))


def _record_leg(report: ChaosReport, client: ServeClient,
                sweep: List[SweepPoint], serve_record_dir: Path,
                clean_record_dir: Path) -> None:
    job = client.submit(sweep, tenant="chaos-rec", record=True)
    final = client.wait(job["id"])
    report.legs.append({"name": "recordings",
                        "outcome": f"record job {job['id']} -> "
                                   f"{final['state']}"})
    report.check("record job completes", final["state"] == "done",
                 f"state={final['state']}")
    identical = True
    detail = ""
    for index, point in enumerate(sweep):
        name = f"{point_key(point)}.rec.json"
        clean_bytes = (clean_record_dir / name).read_bytes()
        wire_bytes = client.recording_bytes(job["id"], index)
        disk_bytes = (serve_record_dir / name).read_bytes()
        if wire_bytes != clean_bytes or disk_bytes != clean_bytes:
            identical = False
            detail = f"point {index} recording diverged"
            break
    report.check("recording bytes identical (disk + wire)",
                 identical, detail)
