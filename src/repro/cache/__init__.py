"""Cache hierarchy substrate: MESI states, set-associative caches."""

from .cache import SetAssociativeCache
from .hierarchy import AccessResult, CacheHierarchy
from .mesi import MesiState

__all__ = ["AccessResult", "CacheHierarchy", "MesiState",
           "SetAssociativeCache"]
