"""Per-processor two-level cache hierarchy (Figure 5 geometry).

Coherence state is tracked at L2 granularity (the L2 is inclusive of
the L1, as in the modeled Sun machines); the L1 is a residency filter
that only affects hit latency. On any L2 line invalidation or eviction,
the covering L1 lines are invalidated to preserve inclusion.

``access`` classifies a memory reference into one of the
:class:`AccessResult` kinds; the SMP system then performs whatever bus
transaction the classification requires and calls back into
``fill``/``upgrade`` to commit the state change. Splitting classify and
commit keeps the hierarchy free of bus knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..config import CacheConfig
from ..errors import CoherenceError
from ..sim.stats import StatsRegistry
from .cache import SetAssociativeCache
from .mesi import MesiState


class AccessKind(Enum):
    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"
    L2_HIT_NEEDS_UPGRADE = "l2_hit_needs_upgrade"
    MISS = "miss"


@dataclass
class AccessResult:
    """Classification of one memory reference against the local caches."""

    kind: AccessKind
    line_address: int
    latency: int
    writeback_victim: Optional[int] = None  # line address needing WB


class CacheHierarchy:
    """L1 (I/D combined residency) + inclusive write-back L2."""

    def __init__(self, cpu_id: int, l1_config: CacheConfig,
                 l2_config: CacheConfig,
                 stats: Optional[StatsRegistry] = None):
        self.cpu_id = cpu_id
        self.l1 = SetAssociativeCache(l1_config)
        self.l2 = SetAssociativeCache(l2_config)
        self.stats = stats if stats is not None else StatsRegistry()
        self._prefix = f"cpu{cpu_id}."
        # L1-line offsets inside one L2 line, precomputed for the
        # inclusion sweep (a fresh range object per invalidation is
        # measurable on the snoop path).
        self._l1_offsets = tuple(range(0, l2_config.line_bytes,
                                       l1_config.line_bytes))
        # Deferred access-classification counters (flushed into the
        # registry on read; see StatsRegistry.register_flusher).
        self._pending_l1_hit = 0
        self._pending_l2_hit = 0
        self._pending_l2_miss = 0
        self._pending_upgrade = 0
        self.stats.register_flusher(self._flush_stats)

    def _flush_stats(self) -> None:
        add = self.stats.add
        prefix = self._prefix
        if self._pending_l1_hit:
            add(prefix + "l1_hit", self._pending_l1_hit)
            self._pending_l1_hit = 0
        if self._pending_l2_hit:
            add(prefix + "l2_hit", self._pending_l2_hit)
            self._pending_l2_hit = 0
        if self._pending_l2_miss:
            add(prefix + "l2_miss", self._pending_l2_miss)
            self._pending_l2_miss = 0
        if self._pending_upgrade:
            add(prefix + "upgrade_needed", self._pending_upgrade)
            self._pending_upgrade = 0

    # -- local access classification -----------------------------------

    def access(self, is_write: bool, address: int) -> AccessResult:
        """Classify a load/store; does not change coherence state except
        recording LRU recency and the silent E->M upgrade on write hits."""
        l2_line = self.l2.line_address(address)
        l2_entry = self.l2.lookup_line(l2_line)
        if l2_entry is None:
            self._pending_l2_miss += 1
            return AccessResult(AccessKind.MISS, l2_line,
                                latency=0)
        # L2 has the line; check write permission first.
        if is_write and not l2_entry.state.can_write:
            self._pending_upgrade += 1
            return AccessResult(AccessKind.L2_HIT_NEEDS_UPGRADE, l2_line,
                                latency=self.l2.config.hit_latency)
        if is_write:
            l2_entry.state = MesiState.MODIFIED  # includes silent E->M
        l1_entry = self.l1.lookup(address)
        if l1_entry is not None:
            self._pending_l1_hit += 1
            return AccessResult(AccessKind.L1_HIT, l2_line,
                                latency=self.l1.config.hit_latency)
        # L1 refill from L2 (no bus traffic; inclusion preserved).
        self.l1.insert(address, MesiState.SHARED)
        self._pending_l2_hit += 1
        return AccessResult(AccessKind.L2_HIT, l2_line,
                            latency=self.l2.config.hit_latency)

    # -- commit points called by the SMP system -------------------------

    def fill(self, line_address: int,
             state: MesiState) -> Optional[Tuple[int, MesiState]]:
        """Install a missed line in L2 (and L1); returns evicted victim."""
        victim = self.l2.insert_line(line_address, state)
        if victim is not None:
            self._enforce_inclusion(victim[0])
        # An L2-aligned address is L1-aligned too (L2 lines are the
        # larger power of two), so the fused insert applies directly.
        self.l1.insert_line(line_address, MesiState.SHARED)
        return victim

    def upgrade(self, line_address: int) -> None:
        """Commit an S->M upgrade after the invalidating bus transaction."""
        entry = self.l2.lookup_line(line_address, touch=False)
        if entry is None:
            raise CoherenceError(
                f"upgrade of non-resident line {line_address:#x}")
        entry.state = MesiState.MODIFIED

    # -- snooping (remote transactions) ---------------------------------

    def snoop_read(self, line_address: int,
                   dirty_to_owned: bool = False) -> MesiState:
        """Remote BusRd: return prior state; downgrade M/E.

        MESI flushes a MODIFIED line to memory and drops to SHARED;
        MOESI (``dirty_to_owned``) keeps responsibility on-chip by
        moving M to OWNED instead (memory stays stale).
        """
        entry = self.l2.lookup_line(line_address, touch=False)
        if entry is None:
            return MesiState.INVALID
        prior = entry.state
        if prior is MesiState.MODIFIED:
            entry.state = (MesiState.OWNED if dirty_to_owned
                           else MesiState.SHARED)
        elif prior is MesiState.EXCLUSIVE:
            entry.state = MesiState.SHARED
        return prior

    def snoop_read_exclusive(self, line_address: int) -> MesiState:
        """Remote BusRdX/Upgrade: return prior state; invalidate."""
        entry = self.l2.lookup_line(line_address, touch=False)
        if entry is None:
            return MesiState.INVALID
        prior = entry.state
        entry.state = MesiState.INVALID
        self._enforce_inclusion(line_address)
        return prior

    # -- helpers ----------------------------------------------------------

    def _enforce_inclusion(self, l2_line_address: int) -> None:
        """Invalidate all L1 lines covered by an evicted/invalid L2 line."""
        invalidate = self.l1.invalidate_line
        for offset in self._l1_offsets:
            invalidate(l2_line_address + offset)

    def state_of(self, address: int) -> MesiState:
        return self.l2.state_of(address)

    def flush(self) -> List[int]:
        """Drop all lines; returns addresses of dirty lines (for WB)."""
        dirty = [addr for addr, line in self.l2.iter_lines()
                 if line.state.is_dirty]
        self.l1.flush()
        self.l2.flush()
        return dirty
