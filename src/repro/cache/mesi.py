"""Cache line states (the paper's coherence protocol, section 7.2).

The simulated machine uses the Illinois/MESI snooping write-invalidate
protocol: Modified, Exclusive, Shared, Invalid. The OWNED state exists
for the MOESI protocol-variant ablation (a dirty line shared out
without updating memory; its holder stays responsible for the eventual
write-back). State transitions are driven by
:mod:`repro.coherence.protocol` and its variants.
"""

from __future__ import annotations

from enum import Enum


class MesiState(Enum):
    MODIFIED = "M"
    OWNED = "O"       # MOESI only: dirty but shared; owner supplies
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Per-member classification flags, precomputed once (same pattern as
# TransactionType): every cache lookup, snoop, and eviction scan
# consults these, so they are plain attributes rather than properties
# recomputing tuple membership per call.
for _member in MesiState:
    #: any resident copy (everything but I)
    _member.is_valid = _member is not MesiState.INVALID
    #: memory is stale: this copy must be written back on eviction
    _member.is_dirty = _member in (MesiState.MODIFIED, MesiState.OWNED)
    #: writable without a bus transaction (M or E; E upgrades
    #: silently; O must broadcast an upgrade like S)
    _member.can_write = _member in (MesiState.MODIFIED,
                                    MesiState.EXCLUSIVE)
