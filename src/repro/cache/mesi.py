"""Cache line states (the paper's coherence protocol, section 7.2).

The simulated machine uses the Illinois/MESI snooping write-invalidate
protocol: Modified, Exclusive, Shared, Invalid. The OWNED state exists
for the MOESI protocol-variant ablation (a dirty line shared out
without updating memory; its holder stays responsible for the eventual
write-back). State transitions are driven by
:mod:`repro.coherence.protocol` and its variants.
"""

from __future__ import annotations

from enum import Enum


class MesiState(Enum):
    MODIFIED = "M"
    OWNED = "O"       # MOESI only: dirty but shared; owner supplies
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not MesiState.INVALID

    @property
    def is_dirty(self) -> bool:
        """Memory is stale: this copy must be written back on eviction."""
        return self in (MesiState.MODIFIED, MesiState.OWNED)

    @property
    def can_write(self) -> bool:
        """Writable without a bus transaction (M or E; E upgrades
        silently; O must broadcast an upgrade like S)."""
        return self in (MesiState.MODIFIED, MesiState.EXCLUSIVE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
