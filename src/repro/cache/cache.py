"""Set-associative, write-back cache tag store with LRU replacement.

This is a *tag* model: the simulator tracks which lines are resident
and in what MESI state, not the data bytes (the functional SENSS layer
carries real bytes separately). Each instance models one cache level of
one processor. Addresses are byte addresses; lookups are by line.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..config import CacheConfig
from ..errors import CoherenceError
from .mesi import MesiState

_INVALID = MesiState.INVALID


class CacheLine:
    """Residency record for one cache line."""

    __slots__ = ("tag", "state", "last_used")

    def __init__(self, tag: int, state: MesiState, last_used: int):
        self.tag = tag
        self.state = state
        self.last_used = last_used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheLine(tag={self.tag:#x}, {self.state})"


class SetAssociativeCache:
    """LRU set-associative cache over line-aligned addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        # set index -> list of CacheLine (at most `associativity` long)
        self._sets: Dict[int, List[CacheLine]] = {}
        self._tick = 0

    # -- address arithmetic --------------------------------------------

    def line_address(self, address: int) -> int:
        """Align a byte address down to its line address."""
        return address >> self._offset_bits << self._offset_bits

    def _index_and_tag(self, line_address: int) -> Tuple[int, int]:
        block = line_address >> self._offset_bits
        return block % self._num_sets, block // self._num_sets

    # -- lookup ----------------------------------------------------------

    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line covering ``address``, or None.

        Lines in state INVALID are treated as absent. ``touch`` updates
        LRU recency (snoops pass touch=False so remote traffic does not
        perturb the local replacement order).
        """
        return self.lookup_line(
            address >> self._offset_bits << self._offset_bits, touch)

    def lookup_line(self, line_address: int,
                    touch: bool = True) -> Optional[CacheLine]:
        """``lookup`` for an already line-aligned address.

        The hot paths (snoops, coherence commits, the fast engine) have
        the line address in hand; this variant skips re-aligning it.
        """
        block = line_address >> self._offset_bits
        index = block % self._num_sets
        tag = block // self._num_sets
        for line in self._sets.get(index, ()):
            if line.tag == tag and line.state is not _INVALID:
                if touch:
                    self._tick += 1
                    line.last_used = self._tick
                return line
        return None

    def contains(self, address: int) -> bool:
        return self.lookup(address, touch=False) is not None

    def state_of(self, address: int) -> MesiState:
        line = self.lookup(address, touch=False)
        return line.state if line else MesiState.INVALID

    # -- mutation ---------------------------------------------------------

    def insert(self, address: int,
               state: MesiState) -> Optional[Tuple[int, MesiState]]:
        """Install a line; returns (victim_line_address, victim_state) if
        a valid line had to be evicted, else None.

        The caller is responsible for issuing the write-back bus
        transaction when the victim is MODIFIED.
        """
        return self.insert_line(
            address >> self._offset_bits << self._offset_bits, state)

    def insert_line(self, line_address: int,
                    state: MesiState) -> Optional[Tuple[int, MesiState]]:
        """``insert`` for an already line-aligned address."""
        if not state.is_valid:
            raise CoherenceError("cannot insert a line in state I")
        block = line_address >> self._offset_bits
        index = block % self._num_sets
        tag = block // self._num_sets
        sets = self._sets
        ways = sets.get(index)
        if ways is None:
            ways = sets[index] = []
        tick = self._tick + 1
        self._tick = tick
        for line in ways:
            if line.tag == tag:
                line.state = state
                line.last_used = tick
                return None
        victim: Optional[Tuple[int, MesiState]] = None
        if len(ways) >= self._assoc:
            # Prefer replacing an INVALID way; else evict true LRU.
            # Manual scan (first-wins on ties, like min()) — the
            # key-function form costs a lambda call per way per miss.
            evict = ways[0]
            evict_key = (evict.state is not _INVALID, evict.last_used)
            for line in ways:
                key = (line.state is not _INVALID, line.last_used)
                if key < evict_key:
                    evict = line
                    evict_key = key
            if evict.state.is_valid:
                victim_block = evict.tag * self._num_sets + index
                victim = (victim_block << self._offset_bits, evict.state)
            ways.remove(evict)
        ways.append(CacheLine(tag, state, tick))
        return victim

    def set_state(self, address: int, state: MesiState) -> None:
        """Change the state of a resident line (I removes it logically)."""
        index, tag = self._index_and_tag(self.line_address(address))
        for line in self._sets.get(index, ()):
            if line.tag == tag:
                line.state = state
                return
        if state.is_valid:
            raise CoherenceError(
                f"set_state on non-resident line {address:#x}")

    def invalidate(self, address: int) -> bool:
        """Invalidate the line covering ``address``; True if it was valid."""
        line = self.lookup(address, touch=False)
        if line is None:
            return False
        line.state = MesiState.INVALID
        return True

    def invalidate_line(self, line_address: int) -> bool:
        """``invalidate`` for an already line-aligned address."""
        line = self.lookup_line(line_address, touch=False)
        if line is None:
            return False
        line.state = MesiState.INVALID
        return True

    def iter_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield (line_address, line) for all valid resident lines."""
        for index, ways in self._sets.items():
            for line in ways:
                if line.state.is_valid:
                    block = line.tag * self._num_sets + index
                    yield block << self._offset_bits, line

    def valid_line_count(self) -> int:
        return sum(1 for _ in self.iter_lines())

    def flush(self) -> None:
        self._sets.clear()
        self._tick = 0
