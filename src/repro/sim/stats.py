"""Lightweight statistics counters for the simulator.

Every subsystem (caches, bus, SHU, memory protection) registers named
counters in a :class:`StatsRegistry`; benches and tests read them to
compute the paper's metrics (slowdown, bus-activity increase, transfer
mix).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class StatsRegistry:
    """A flat namespace of counters, addressable by dotted names."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        existing = self._counters.get(name)
        if existing is None:
            existing = Counter(name)
            self._counters[name] = existing
        return existing

    def get(self, name: str) -> int:
        """Read a counter's value (0 if it was never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def add(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def merge(self, bumps: Dict[str, int]) -> None:
        """Flush a dict of raw counter bumps into the registry.

        The simulation fast path accumulates per-access events as plain
        dict/int increments and merges them once at run end — one
        ``Counter`` touch per name instead of one per event.
        """
        for name, amount in bumps.items():
            if amount:
                self.counter(name).increment(amount)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()

    def items(self) -> Iterator[Tuple[str, int]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def as_dict(self) -> Dict[str, int]:
        return {name: value for name, value in self.items()}

    def total(self, prefix: str) -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(counter.value
                   for name, counter in self._counters.items()
                   if name.startswith(prefix))

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={v}" for n, v in self.items())
        return f"StatsRegistry({body})"
