"""Lightweight statistics counters for the simulator.

Every subsystem (caches, bus, SHU, memory protection) registers named
counters in a :class:`StatsRegistry`; benches and tests read them to
compute the paper's metrics (slowdown, bus-activity increase, transfer
mix).

Hot-path contract (the slow-path optimization, DESIGN.md §6c): event
sources do **not** call :meth:`StatsRegistry.add` per event. They bump
plain integer fields and register a *flusher* with the registry; any
read (``get``/``items``/``as_dict``/``total``) first drains every
registered flusher, so observed values are always exact while the
simulation loop never touches a string-keyed counter.

:class:`Histogram` extends the registry with *distribution* metrics
(miss latency, mask-wait cycles, pad-cache reuse distance, ...) under
the same contract: ``record`` is a plain list append; bucketing,
moments and percentiles materialize only when a reader asks. Counters
and histograms live in separate namespaces — ``as_dict`` stays a pure
counter snapshot so golden stats digests are unaffected by attaching
observability.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A power-of-two-bucketed distribution with exact moments.

    ``record`` appends the raw value to a pending list (one list append
    on the recording path, nothing else); any read drains the pending
    values into bucket counts and exact count/sum/min/max. Bucket ``b``
    holds values whose ``bit_length()`` is ``b`` — bucket 0 is exactly
    the value 0, bucket ``b`` spans ``[2**(b-1), 2**b - 1]`` — so cycle
    latencies from 1 to 2**63 fit in 65 buckets with ≤2x resolution.
    """

    __slots__ = ("name", "_pending", "_counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str):
        self.name = name
        self._pending: List[int] = []
        self._counts: List[int] = [0] * 65
        self.count = 0
        self.total = 0
        self.minimum: Optional[int] = None
        self.maximum = 0

    # -- recording (hot side) ------------------------------------------

    def record(self, value: int) -> None:
        self._pending.append(value)

    def record_many(self, values) -> None:
        self._pending.extend(values)

    # -- reading (drains first) ----------------------------------------

    def _drain(self) -> None:
        pending = self._pending
        if not pending:
            return
        self._pending = []
        counts = self._counts
        for value in pending:
            if value < 0:
                value = 0
            counts[value.bit_length()] += 1
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        self._drain()
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def _bucket_bounds(bucket: int) -> Tuple[int, int]:
        if bucket == 0:
            return 0, 0
        return 1 << (bucket - 1), (1 << bucket) - 1

    def buckets(self) -> List[Tuple[int, int, int]]:
        """Non-empty ``(low, high, count)`` buckets, ascending."""
        self._drain()
        return [(*self._bucket_bounds(bucket), count)
                for bucket, count in enumerate(self._counts) if count]

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket holding the given quantile.

        A bucketed estimate (within 2x of the exact order statistic);
        0 when nothing was recorded.
        """
        self._drain()
        if not self.count:
            return 0
        rank = fraction * self.count
        cumulative = 0
        for bucket, count in enumerate(self._counts):
            cumulative += count
            if count and cumulative >= rank:
                return min(self._bucket_bounds(bucket)[1], self.maximum)
        return self.maximum

    def summary(self) -> Dict[str, object]:
        """JSON-ready snapshot used by run reports and trace exports."""
        self._drain()
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.minimum is not None else 0,
            "max": self.maximum,
            "mean": round(self.mean, 3),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": [list(bucket) for bucket in self.buckets()],
        }

    def reset(self) -> None:
        self._pending = []
        self._counts = [0] * 65
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = 0

    def __repr__(self) -> str:
        self._drain()
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.1f})"


class StatsRegistry:
    """A flat namespace of counters, addressable by dotted names."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._flushers: List[Callable[[], None]] = []
        self._draining = False

    # -- deferred accounting -------------------------------------------

    def register_flusher(self, flush: Callable[[], None]) -> None:
        """Register a callback that drains pending raw counts.

        Components that accumulate events in plain ints (the bus, the
        SENSS layer, memory protection, cache hierarchies) register one
        flusher each; the registry invokes them before any read so
        deferred counts are never observable.
        """
        self._flushers.append(flush)

    def _drain(self) -> None:
        if self._draining or not self._flushers:
            return
        self._draining = True
        try:
            for flush in self._flushers:
                flush()
        finally:
            self._draining = False

    # -- counters ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        existing = self._counters.get(name)
        if existing is None:
            existing = Counter(name)
            self._counters[name] = existing
        return existing

    def get(self, name: str) -> int:
        """Read a counter's value (0 if it was never touched)."""
        self._drain()
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def add(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def merge(self, bumps: Dict[str, int]) -> None:
        """Flush a dict of raw counter bumps into the registry.

        The simulation fast path accumulates per-access events as plain
        dict/int increments and merges them once at run end — one
        ``Counter`` touch per name instead of one per event.
        """
        for name, amount in bumps.items():
            if amount:
                self.counter(name).increment(amount)

    def reset(self) -> None:
        # Drain first so pending raw counts from before the reset do
        # not leak into post-reset reads.
        self._drain()
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    # -- histograms ----------------------------------------------------

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        existing = self._histograms.get(name)
        if existing is None:
            existing = Histogram(name)
            self._histograms[name] = existing
        return existing

    def histograms(self) -> Dict[str, Histogram]:
        """All histograms, drained and ready to read."""
        self._drain()
        for histogram in self._histograms.values():
            histogram._drain()
        return dict(self._histograms)

    def histogram_summaries(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready ``{name: summary}`` of every non-empty histogram."""
        return {name: histogram.summary()
                for name, histogram in sorted(self.histograms().items())
                if histogram.count}

    def items(self) -> Iterator[Tuple[str, int]]:
        self._drain()
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def as_dict(self) -> Dict[str, int]:
        return {name: value for name, value in self.items()}

    def total(self, prefix: str) -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        self._drain()
        return sum(counter.value
                   for name, counter in self._counters.items()
                   if name.startswith(prefix))

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={v}" for n, v in self.items())
        return f"StatsRegistry({body})"
