"""Lightweight statistics counters for the simulator.

Every subsystem (caches, bus, SHU, memory protection) registers named
counters in a :class:`StatsRegistry`; benches and tests read them to
compute the paper's metrics (slowdown, bus-activity increase, transfer
mix).

Hot-path contract (the slow-path optimization, DESIGN.md §6c): event
sources do **not** call :meth:`StatsRegistry.add` per event. They bump
plain integer fields and register a *flusher* with the registry; any
read (``get``/``items``/``as_dict``/``total``) first drains every
registered flusher, so observed values are always exact while the
simulation loop never touches a string-keyed counter.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class StatsRegistry:
    """A flat namespace of counters, addressable by dotted names."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._flushers: List[Callable[[], None]] = []
        self._draining = False

    # -- deferred accounting -------------------------------------------

    def register_flusher(self, flush: Callable[[], None]) -> None:
        """Register a callback that drains pending raw counts.

        Components that accumulate events in plain ints (the bus, the
        SENSS layer, memory protection, cache hierarchies) register one
        flusher each; the registry invokes them before any read so
        deferred counts are never observable.
        """
        self._flushers.append(flush)

    def _drain(self) -> None:
        if self._draining or not self._flushers:
            return
        self._draining = True
        try:
            for flush in self._flushers:
                flush()
        finally:
            self._draining = False

    # -- counters ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        existing = self._counters.get(name)
        if existing is None:
            existing = Counter(name)
            self._counters[name] = existing
        return existing

    def get(self, name: str) -> int:
        """Read a counter's value (0 if it was never touched)."""
        self._drain()
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def add(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def merge(self, bumps: Dict[str, int]) -> None:
        """Flush a dict of raw counter bumps into the registry.

        The simulation fast path accumulates per-access events as plain
        dict/int increments and merges them once at run end — one
        ``Counter`` touch per name instead of one per event.
        """
        for name, amount in bumps.items():
            if amount:
                self.counter(name).increment(amount)

    def reset(self) -> None:
        # Drain first so pending raw counts from before the reset do
        # not leak into post-reset reads.
        self._drain()
        for counter in self._counters.values():
            counter.reset()

    def items(self) -> Iterator[Tuple[str, int]]:
        self._drain()
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def as_dict(self) -> Dict[str, int]:
        return {name: value for name, value in self.items()}

    def total(self, prefix: str) -> int:
        """Sum of all counters whose name starts with ``prefix``."""
        self._drain()
        return sum(counter.value
                   for name, counter in self._counters.items()
                   if name.startswith(prefix))

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={v}" for n, v in self.items())
        return f"StatsRegistry({body})"
