"""Deterministic randomness for workload generation and crypto setup.

All stochastic behaviour in the reproduction flows through seeded
:class:`DeterministicRng` instances so every experiment is exactly
repeatable — the paper's own §7.8 discussion of simulation variability
makes determinism worth engineering for.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A thin, explicitly seeded wrapper around :class:`random.Random`."""

    def __init__(self, seed: int):
        self.seed = seed
        self._random = random.Random(seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, options: Sequence[T]) -> T:
        return self._random.choice(options)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def sample(self, population: Sequence[T], count: int) -> List[T]:
        return self._random.sample(population, count)

    def getrandbits(self, bits: int) -> int:
        return self._random.getrandbits(bits)

    def random_bytes(self, count: int) -> bytes:
        return self._random.getrandbits(count * 8).to_bytes(count, "little")

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent child stream (stable under refactoring)."""
        return DeterministicRng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def geometric(self, mean: float) -> int:
        """Geometric-ish positive integer with the given mean (>= 1)."""
        if mean <= 1.0:
            return 1
        # Inverse-CDF sampling of a geometric distribution.
        probability = 1.0 / mean
        value = 1
        while self._random.random() > probability and value < 64 * mean:
            value += 1
        return value
