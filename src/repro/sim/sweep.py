"""Parallel sweep runner with a disk-backed result cache.

Every figure in the paper is a *sweep*: dozens of independent
(config, workload, seed) simulations whose results are reduced into a
table. This module runs such sweeps:

- :func:`run_sweep` fans independent points out over a
  ``ProcessPoolExecutor`` (each simulation is single-threaded pure
  Python, so process-level parallelism scales to the core count);
- completed :class:`~repro.smp.metrics.SimulationResult`s are stored in
  a content-addressed JSON cache (default ``.benchmarks/cache/``), so
  warm re-runs of a figure suite are near-instant;
- cache keys hash the *full* simulation input — workload name, scale,
  seed, every config field, and :data:`ENGINE_VERSION` — so any change
  to the machine configuration or the engine's timing semantics
  invalidates exactly the affected entries.

Cache invalidation rules: bump :data:`ENGINE_VERSION` whenever a change
alters simulated *timing or statistics* (it is part of every key; stale
entries are simply never hit again). Entries are plain JSON files named
by their key and carry an embedded content checksum; an entry that
fails to read, parse, or checksum is *quarantined* — renamed to
``<key>.json.corrupt`` so it is inspectable but never re-read — and
treated as a miss. Deleting the cache directory is always safe.

The runner is crash-proof: a sweep point that raises (or, in parallel
mode, whose worker dies or exceeds ``timeout`` seconds) does not abort
the sweep. Failed points are retried with exponential backoff up to
``retries`` times; completed points are cached before any failure is
reported. ``on_error="raise"`` (the default) raises
:class:`~repro.errors.SweepError` carrying the per-point failures,
``on_error="none"`` returns ``None`` placeholders in their slots.

Environment knobs:

- ``REPRO_SWEEP_PARALLEL=0`` forces in-process serial execution;
- ``REPRO_SWEEP_WORKERS=N`` caps the worker-process count.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
import os
import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, \
    Union

from ..config import SystemConfig
from ..errors import ConfigError, SweepError
from ..smp.metrics import SimulationResult

#: Bump when a change alters simulated timing or statistics; cached
#: results from other versions are never returned.
#: Version history: 1 = merged fast path; 2 = streamlined slow path +
#: deferred statistics (bit-identical results, conservatively bumped);
#: 3 = flattened hash tree, fused memprotect node path, fast digest
#: engines (bit-identical results, conservatively bumped);
#: 4 = vector backend + engine registry (bit-identical results,
#: conservatively bumped);
#: 5 = checkpoint/fork prefix-sharing executor — resumable engine
#: loop and snapshot-forked runs (bit-identical results,
#: conservatively bumped so result and checkpoint stores roll
#: together).
ENGINE_VERSION = 5

DEFAULT_CACHE_DIR = Path(".benchmarks") / "cache"


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation in a sweep."""

    workload: str              # registry name (repro.workloads)
    config: SystemConfig
    scale: float = 1.0
    seed: int = 0


def build_system(config: SystemConfig):
    """Build the machine a config describes (secure iff any layer on)."""
    from ..core.senss import build_secure_system
    from ..smp.system import SmpSystem
    if (config.senss.enabled or config.memprotect.encryption_enabled
            or config.memprotect.integrity_enabled):
        return build_secure_system(config)
    return SmpSystem(config)


def run_point(point: SweepPoint) -> SimulationResult:
    """Generate the point's workload and simulate it to completion."""
    from ..workloads.registry import generate
    workload = generate(point.workload, point.config.num_processors,
                        scale=point.scale, seed=point.seed)
    return build_system(point.config).run(workload)


@dataclass
class SweepTimings:
    """Wall-clock and robustness accounting for :func:`run_sweep`.

    ``run_s`` sums per-point worker seconds (it exceeds ``wall_s``
    when points ran in parallel); ``cache_s`` is time spent probing
    and loading the result cache in the coordinating process.
    ``points_failed`` counts points with no result after all retries,
    ``points_retried`` counts points that needed more than one
    attempt, ``points_timed_out`` counts individual timeout events,
    and ``cache_quarantined`` counts corrupt cache entries renamed
    aside during this sweep.
    """

    wall_s: float = 0.0
    run_s: float = 0.0
    cache_s: float = 0.0
    slowest_point_s: float = 0.0
    points_run: int = 0
    points_cached: int = 0
    points_failed: int = 0
    points_retried: int = 0
    points_timed_out: int = 0
    cache_quarantined: int = 0
    workers: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "sweep.wall_s": round(self.wall_s, 6),
            "sweep.run_s": round(self.run_s, 6),
            "sweep.cache_s": round(self.cache_s, 6),
            "sweep.slowest_point_s": round(self.slowest_point_s, 6),
            "sweep.points_run": self.points_run,
            "sweep.points_cached": self.points_cached,
            "sweep.points_failed": self.points_failed,
            "sweep.points_retried": self.points_retried,
            "sweep.points_timed_out": self.points_timed_out,
            "sweep.cache_quarantined": self.cache_quarantined,
            "sweep.workers": self.workers,
        }


@dataclass(frozen=True)
class SweepPointFailure:
    """Why one sweep point produced no result (see ``SweepError``)."""

    index: int          # first position of the point in the sweep
    workload: str
    error: str          # "ExcType: message" or a timeout description
    attempts: int = 1
    timed_out: bool = False


def _run_point_timed(point: SweepPoint
                     ) -> Tuple[SimulationResult, float]:
    """``run_point`` plus its worker-side wall-clock seconds.

    Looks ``run_point`` up as a module global (not a closed-over
    reference) so monkeypatched replacements are honored, and ships
    the measurement back with the result so the coordinator can
    aggregate per-point timings across process boundaries.
    """
    # Chaos-harness seam (repro.chaos): one env lookup when disabled,
    # so the production path stays at the noise floor.
    if "REPRO_CHAOS_PLAN" in os.environ:
        from ..chaos.hooks import apply_worker_faults
        apply_worker_faults(point)
    start = time.perf_counter()
    result = run_point(point)
    return result, time.perf_counter() - start


def _recorded_runner(record_dir: str, point: SweepPoint
                     ) -> Tuple[SimulationResult, float]:
    """``_run_point_timed`` that also persists a deterministic
    recording (docs/record_replay.md) of the run as a sweep artifact.

    Module-level (wrapped in ``functools.partial`` with a string
    directory) so it pickles into worker processes. The artifact is
    named by :func:`point_key`, matching the result cache's naming, so
    a recording pairs with its cache entry by filename. Attaching the
    recorder never changes simulated timing (DESIGN.md §6d), so the
    returned result is bit-identical to an unrecorded run and safe to
    cache as usual.
    """
    from ..obs.recording import record_run
    if "REPRO_CHAOS_PLAN" in os.environ:
        from ..chaos.hooks import apply_worker_faults
        apply_worker_faults(point)
    start = time.perf_counter()
    recording = record_run(point)
    recording.save(Path(record_dir) / f"{point_key(point)}.rec.json")
    return recording.to_result(), time.perf_counter() - start


def lru_gc(root: Path, max_bytes: int, pattern: str) -> int:
    """Evict oldest-``mtime`` files matching ``pattern`` under ``root``
    until their total size fits ``max_bytes``; returns eviction count.

    Shared by the :class:`ResultCache` and the
    :class:`~repro.sim.checkpoint.CheckpointStore` (loads touch mtime,
    so "oldest mtime" is least-recently-used). Tolerant of concurrent
    sweeps racing on the same directory: a file vanishing mid-scan or
    mid-unlink is someone else's eviction, not an error.
    """
    if not root.is_dir():
        return 0
    entries = []
    total = 0
    for path in root.glob(pattern):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
        total += stat.st_size
    entries.sort()
    evicted = 0
    for _mtime, size, path in entries:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        evicted += 1
    return evicted


def point_key(point: SweepPoint) -> str:
    """Content hash identifying a point's complete simulation input.

    The engine *backend* choice is excluded on purpose: backends are
    bit-identical (pinned by tests/smp/test_engine_backends.py), so
    results computed under scalar and vector are interchangeable and
    share cache entries.
    """
    config_payload = asdict(point.config)
    config_payload.pop("engine", None)
    payload = {
        "engine": ENGINE_VERSION,
        "workload": point.workload,
        "scale": point.scale,
        "seed": point.seed,
        "config": config_payload,
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed JSON store of completed simulation results.

    Every stored entry embeds a checksum over its own payload; a file
    that cannot be read, parsed, checksummed, or shaped into a
    :class:`SimulationResult` is renamed to ``<key>.json.corrupt``
    (counted in :attr:`quarantined`) so the damage is inspectable and
    the sweep re-simulates the point exactly once instead of
    re-tripping on the same bad file every run.

    The cache is safe for **concurrent writers and readers** — sweep
    worker processes, server threads and an asyncio loop may all share
    one directory. Writers stage into a uniquely-named temp file
    (pid + thread id + a process-local counter, so same-process
    threads never collide) and publish with atomic ``os.replace``;
    readers therefore only ever see absent or complete entries, never
    torn JSON. Two writers racing on the same key both publish a
    complete entry and the last rename wins — entries for a key are
    identical by construction (same simulation input), so either
    winner is correct. Counter updates are lock-protected so shared
    instances report exact quarantine/eviction counts.

    ``max_mb`` bounds the directory: every :meth:`store` runs an LRU
    sweep (loads touch mtime) evicting oldest entries until under
    budget; evictions are counted in :attr:`evicted`. Unbounded by
    default for compatibility — the CLI surfaces ``--cache-max-mb``.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 max_mb: Optional[float] = None):
        self.root = Path(root)
        self.max_mb = max_mb
        self.quarantined = 0
        self.evicted = 0
        self._lock = threading.Lock()
        self._scratch_serial = itertools.count()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @staticmethod
    def _checksum(payload: Dict[str, object]) -> str:
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _quarantine(self, path: Path) -> None:
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            return  # already moved or removed by a concurrent sweep
        with self._lock:
            self.quarantined += 1

    def load(self, point: SweepPoint) -> Optional[SimulationResult]:
        path = self._path(point_key(point))
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None  # a plain miss
        except (OSError, ValueError):
            self._quarantine(path)  # unreadable or torn entry
            return None
        checksum = None
        if isinstance(payload, dict):
            checksum = payload.pop("checksum", None)
        if checksum is not None and checksum != self._checksum(payload):
            self._quarantine(path)  # bit-rot or a tampered entry
            return None
        try:
            os.utime(path)  # LRU recency for gc()
        except OSError:
            pass
        try:
            return SimulationResult(
                workload=payload["workload"],
                num_cpus=payload["num_cpus"],
                cycles=payload["cycles"],
                per_cpu_cycles=list(payload["per_cpu_cycles"]),
                stats={name: value
                       for name, value in payload["stats"].items()})
        except (KeyError, TypeError):
            self._quarantine(path)  # parses but is not a result
            return None

    def store(self, point: SweepPoint, result: SimulationResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(point_key(point))
        payload = {
            "workload": result.workload,
            "num_cpus": result.num_cpus,
            "cycles": result.cycles,
            "per_cpu_cycles": list(result.per_cpu_cycles),
            "stats": dict(result.stats),
        }
        payload["checksum"] = self._checksum(payload)
        # Stage-then-rename so concurrent readers never observe torn
        # JSON. The scratch name is unique per (process, thread,
        # call): a bare pid suffix would collide across threads of
        # one server process, leaving interleaved bytes to publish.
        scratch = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}."
            f"{next(self._scratch_serial)}")
        try:
            scratch.write_text(json.dumps(payload, sort_keys=True))
            scratch.replace(path)
        finally:
            # A failed write (disk full, interrupt) must not leave
            # scratch litter that later globs could trip over.
            if scratch.exists():
                try:
                    scratch.unlink()
                except OSError:
                    pass
        self.gc()

    def gc(self) -> int:
        """Evict least-recently-used entries until under ``max_mb``."""
        if self.max_mb is None:
            return 0
        evicted = lru_gc(self.root, int(self.max_mb * 1024 * 1024),
                         "*.json")
        if evicted:
            with self._lock:
                self.evicted += evicted
        return evicted

    def clear(self) -> int:
        """Delete all cached entries; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue  # a concurrent clear got there first
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json")) \
            if self.root.is_dir() else 0


def _default_workers(num_points: int) -> int:
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(workers, num_points))


def _parallel_enabled() -> bool:
    return os.environ.get("REPRO_SWEEP_PARALLEL", "1") != "0"


class _Outcome(NamedTuple):
    """One attempt at one point: a result or a captured failure."""

    result: Optional[SimulationResult]
    seconds: float
    error: Optional[str]
    timed_out: bool


def _round_serial(points: Sequence[SweepPoint],
                  runner=_run_point_timed) -> List[_Outcome]:
    outcomes = []
    for point in points:
        try:
            result, seconds = runner(point)
        except Exception as exc:
            outcomes.append(_Outcome(
                None, 0.0, f"{type(exc).__name__}: {exc}", False))
        else:
            outcomes.append(_Outcome(result, seconds, None, False))
    return outcomes


def _await_with_deadlines(futures, budgets: Sequence[Optional[float]],
                          workers: int) -> Tuple[list, bool]:
    """Resolve every future against a per-future absolute deadline.

    Future ``i``'s clock starts at submission, not at its sequential
    collection turn: ``deadline_i = start + (sum of earlier budgets) /
    workers + budget_i``. The prefix-sum term is the worst-case list
    scheduling start bound (some worker frees once the earlier
    futures' budgets, spread across the pool, are spent), so a task
    that respects its own budget never falsely times out behind
    queue-mates — while a hung worker can no longer grant every later
    future unbounded wall-clock the way sequential
    ``result(timeout=...)`` collection did.

    Returns ``(slots, hung)`` where ``slots[i]`` is ``("ok", value)``,
    ``("error", message)`` or ``("timeout", None)`` in input order,
    and ``hung`` is True when a timed-out future could not be
    cancelled (its worker is still running and should be reaped).
    """
    start = time.monotonic()
    ahead = 0.0
    deadlines: List[Optional[float]] = []
    for budget in budgets:
        if budget is None:
            deadlines.append(None)
        else:
            deadlines.append(start + ahead / max(1, workers) + budget)
            ahead += budget
    slots: list = [None] * len(futures)
    pending = set(range(len(futures)))
    hung = False
    while pending:
        live = [deadlines[i] for i in pending
                if deadlines[i] is not None]
        wait_s = max(0.0, min(live) - time.monotonic()) if live \
            else None
        done, _ = _futures_wait({futures[i] for i in pending},
                                timeout=wait_s,
                                return_when=FIRST_COMPLETED)
        now = time.monotonic()
        for i in sorted(pending):
            future = futures[i]
            if future in done:
                try:
                    slots[i] = ("ok", future.result())
                except Exception as exc:
                    slots[i] = ("error",
                                f"{type(exc).__name__}: {exc}")
            elif deadlines[i] is not None and now >= deadlines[i]:
                if not future.cancel():
                    hung = True
                slots[i] = ("timeout", None)
            else:
                continue
            pending.discard(i)
    return slots, hung


def _reap(pool: ProcessPoolExecutor, hung: bool) -> None:
    """Shut the pool down; terminate workers left running by abandoned
    (timed-out, uncancellable) futures. Only called once every tracked
    future is resolved, so no live work can be lost — worker-side
    cache/checkpoint writes publish atomically, so a terminate mid-
    write leaves at most a stale temp file."""
    pool.shutdown(wait=False, cancel_futures=True)
    if hung:
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except OSError:
                pass


def _round_parallel(points: Sequence[SweepPoint], workers: int,
                    timeout: Optional[float],
                    runner=_run_point_timed) -> List[_Outcome]:
    """One attempt per point on a fresh pool; captures every failure.

    A fresh pool per round means a worker crash (BrokenProcessPool
    poisons the whole executor) costs at most the current round: every
    in-flight future fails fast, is captured, and retries run on a
    clean pool. Per-point budgets are enforced as absolute deadlines
    from submission (:func:`_await_with_deadlines`); timed-out futures
    are cancelled if still queued, and a truly hung worker is
    terminated at round end (:func:`_reap`), not waited on.
    """
    count = min(workers, len(points))
    pool = ProcessPoolExecutor(max_workers=count)
    hung = False
    try:
        futures = [pool.submit(runner, point) for point in points]
        slots, hung = _await_with_deadlines(
            futures, [timeout] * len(points), count)
    finally:
        _reap(pool, hung)
    outcomes = []
    for status, value in slots:
        if status == "ok":
            result, seconds = value
            outcomes.append(_Outcome(result, seconds, None, False))
        elif status == "timeout":
            outcomes.append(_Outcome(
                None, 0.0, f"timed out after {timeout:g}s", True))
        else:
            outcomes.append(_Outcome(None, 0.0, value, False))
    return outcomes


def _family_units(points: Sequence[SweepPoint],
                  recorded: bool = False) -> List[List[SweepPoint]]:
    """Group points into prefix-sharing chains, smallest scale first.

    Units are keyed by :func:`~repro.sim.checkpoint.family_key`
    (everything but scale) in first-seen order; within a unit the
    scale ordering is what makes each point's first-exhaustion
    snapshot the next point's warm prefix. ``point_key`` breaks scale
    ties deterministically.
    """
    from .checkpoint import family_key
    units: Dict[str, List[SweepPoint]] = {}
    for point in points:
        units.setdefault(family_key(point, recorded=recorded),
                         []).append(point)
    return [sorted(unit, key=lambda p: (p.scale, point_key(p)))
            for unit in units.values()]


def _chain_runner(checkpoint_dir: str, cache_dir: Optional[str],
                  record_dir: Optional[str],
                  points: Sequence[SweepPoint]):
    """Worker-side entry for one family chain (partial-able, like
    ``_run_point_timed``). Builds fresh store/cache handles in the
    worker — only strings cross the process boundary."""
    from .checkpoint import CheckpointStore, run_chain
    store = CheckpointStore(checkpoint_dir)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return run_chain(points, store, cache=cache,
                     record_dir=record_dir)


def _units_serial(units: Sequence[Sequence[SweepPoint]],
                  runner) -> List[List[_Outcome]]:
    unit_outcomes = []
    for unit in units:
        try:
            rows = runner(unit)
        except Exception as exc:
            rows = [(None, 0.0, f"{type(exc).__name__}: {exc}")] \
                * len(unit)
        unit_outcomes.append([
            _Outcome(result, seconds, error, False)
            for result, seconds, error in rows])
    return unit_outcomes


def _units_parallel(units: Sequence[Sequence[SweepPoint]],
                    workers: int, timeout: Optional[float],
                    runner) -> List[List[_Outcome]]:
    """One chain per pool task; a unit's timeout budget scales with
    its length (``timeout`` stays per-point, as in ``_round_parallel``)
    and is enforced as an absolute deadline from submission
    (:func:`_await_with_deadlines`), so a slow or hung chain cannot
    grant later chains unbounded wall-clock. A failed or timed-out
    chain fails all its points — they retry on the next round,
    cheaply, because the chain's worker-side cache stores and
    checkpoints survive the crash (and its worker, if hung, is
    terminated by :func:`_reap`)."""
    count = min(workers, len(units))
    pool = ProcessPoolExecutor(max_workers=count)
    budgets = [timeout * len(unit) if timeout is not None else None
               for unit in units]
    hung = False
    try:
        futures = [pool.submit(runner, list(unit)) for unit in units]
        slots, hung = _await_with_deadlines(futures, budgets, count)
    finally:
        _reap(pool, hung)
    unit_outcomes = []
    for unit, budget, (status, value) in zip(units, budgets, slots):
        if status == "ok":
            unit_outcomes.append([
                _Outcome(result, seconds, error, False)
                for result, seconds, error in value])
        elif status == "timeout":
            unit_outcomes.append([_Outcome(
                None, 0.0, f"chain timed out after {budget:g}s",
                True)] * len(unit))
        else:
            unit_outcomes.append([_Outcome(None, 0.0, value, False)]
                                 * len(unit))
    return unit_outcomes


def run_sweep(points: Sequence[SweepPoint],
              cache: Optional[ResultCache] = None,
              parallel: Optional[bool] = None,
              max_workers: Optional[int] = None,
              timings: Optional[SweepTimings] = None,
              timeout: Optional[float] = None,
              retries: int = 1,
              backoff_s: float = 0.05,
              backoff_seed: Optional[int] = None,
              on_error: str = "raise",
              record_dir: Optional[Union[str, Path]] = None,
              checkpoint_dir: Optional[Union[str, Path]] = None
              ) -> List[Optional[SimulationResult]]:
    """Run every point, in parallel where possible; results in order.

    Duplicate points are simulated once. With a ``cache``, previously
    completed points are loaded instead of re-run and fresh results are
    stored for the next sweep. Pass a :class:`SweepTimings` to collect
    wall-clock phase accounting (per-worker simulation seconds are
    measured inside the workers and aggregated here).

    A point that raises — or, in parallel mode, whose worker process
    dies or takes longer than ``timeout`` seconds — never aborts the
    sweep: it is retried up to ``retries`` more times with exponential
    backoff (``backoff_s`` doubling per round, on a fresh worker pool
    so one crashed worker cannot poison the retry). The backoff jitter
    is **seeded** — from ``backoff_seed`` when given, else from the
    content hash of the pending points — so a crash-recovery run's
    retry schedule is deterministic and reproducible under ``repro
    record``, yet decorrelated across different sweeps. Results
    completed before a failure are cached regardless. If failures remain,
    ``on_error="raise"`` raises :class:`~repro.errors.SweepError`
    listing them; ``on_error="none"`` returns ``None`` in the failed
    points' slots. ``timeout`` needs worker processes and is ignored
    on the in-process serial path.

    With ``record_dir``, every point that actually *runs* (cache hits
    don't re-run, so they leave no recording) also writes a
    deterministic recording to ``<record_dir>/<point_key>.rec.json``
    — replayable and diffable via ``repro replay`` / ``repro diff``.

    With ``checkpoint_dir``, pending points are grouped into
    prefix-sharing *family chains* (same workload/seed/config,
    different scale) and executed smallest→largest through
    :func:`repro.sim.checkpoint.run_chain`: each point forks from the
    deepest stored snapshot that validates against its traces instead
    of re-simulating the shared warm-up, and results stay
    bit-identical to cold runs (docs/checkpointing.md). Parallelism is
    then across chains rather than points, and ``timeout`` budgets a
    whole chain at ``timeout × len(chain)``.
    """
    if on_error not in ("raise", "none"):
        raise ConfigError(
            f"on_error must be 'raise' or 'none', got {on_error!r}")
    sweep_start = time.perf_counter()
    points = list(points)
    results: dict = {}
    first_index: Dict[str, int] = {}
    pending: List[SweepPoint] = []
    pending_keys: set = set()
    quarantined_before = cache.quarantined if cache is not None else 0
    cache_start = time.perf_counter()
    for position, point in enumerate(points):
        key = point_key(point)
        first_index.setdefault(key, position)
        if key in results or key in pending_keys:
            continue
        cached = cache.load(point) if cache is not None else None
        if cached is not None:
            results[key] = cached
        else:
            pending.append(point)
            pending_keys.add(key)
    cache_seconds = time.perf_counter() - cache_start

    workers = 0
    point_seconds: List[float] = []
    failures: Dict[str, SweepPointFailure] = {}
    retried_keys: set = set()
    timeout_events = 0
    if pending:
        if parallel is None:
            parallel = _parallel_enabled()
        workers = _default_workers(len(pending)) if max_workers is None \
            else max(1, max_workers)
        use_pool = parallel and workers > 1 and len(pending) > 1
        if not use_pool:
            workers = 1
        runner = _run_point_timed
        if record_dir is not None:
            Path(record_dir).mkdir(parents=True, exist_ok=True)
            runner = functools.partial(_recorded_runner,
                                       str(record_dir))
        chain_runner = None
        if checkpoint_dir is not None:
            chain_runner = functools.partial(
                _chain_runner, str(checkpoint_dir),
                str(cache.root) if cache is not None else None,
                str(record_dir) if record_dir is not None else None)
        remaining = list(pending)
        attempts: Dict[str, int] = {}
        # Seeded jitter: a fixed seed (or, by default, the content
        # hash of what's pending) makes the retry schedule a pure
        # function of the sweep's input — identical on a recorded
        # re-run, different across unrelated sweeps so their retries
        # don't synchronize.
        if backoff_seed is None:
            digest = hashlib.sha256("\n".join(
                sorted(pending_keys)).encode()).hexdigest()
            backoff_rng = random.Random(int(digest[:16], 16))
        else:
            backoff_rng = random.Random(backoff_seed)
        for round_number in range(max(0, retries) + 1):
            if not remaining:
                break
            if round_number:
                retried_keys.update(point_key(p) for p in remaining)
                time.sleep(backoff_s * (2 ** (round_number - 1))
                           * (1.0 + backoff_rng.random()))
            if chain_runner is not None:
                units = _family_units(
                    remaining, recorded=record_dir is not None)
                unit_outcomes = (
                    _units_parallel(units, workers, timeout,
                                    chain_runner)
                    if use_pool
                    else _units_serial(units, chain_runner))
                round_points = [point for unit in units
                                for point in unit]
                outcomes = [outcome for unit in unit_outcomes
                            for outcome in unit]
            else:
                round_points = remaining
                outcomes = (
                    _round_parallel(remaining, workers, timeout,
                                    runner=runner)
                    if use_pool else _round_serial(remaining,
                                                   runner=runner))
            next_round: List[SweepPoint] = []
            for point, outcome in zip(round_points, outcomes):
                key = point_key(point)
                attempts[key] = attempts.get(key, 0) + 1
                if outcome.error is None:
                    point_seconds.append(outcome.seconds)
                    results[key] = outcome.result
                    failures.pop(key, None)
                    if cache is not None:
                        store_start = time.perf_counter()
                        cache.store(point, outcome.result)
                        cache_seconds += \
                            time.perf_counter() - store_start
                else:
                    if outcome.timed_out:
                        timeout_events += 1
                    failures[key] = SweepPointFailure(
                        index=first_index[key],
                        workload=point.workload,
                        error=outcome.error,
                        attempts=attempts[key],
                        timed_out=outcome.timed_out)
                    next_round.append(point)
            remaining = next_round

    ordered = [results.get(point_key(point)) for point in points]
    if timings is not None:
        timings.wall_s += time.perf_counter() - sweep_start
        timings.run_s += sum(point_seconds)
        timings.cache_s += cache_seconds
        timings.slowest_point_s = max(
            [timings.slowest_point_s] + point_seconds)
        timings.points_run += len(pending) - len(failures)
        timings.points_cached += len(points) - len(pending)
        timings.points_failed += len(failures)
        timings.points_retried += len(retried_keys)
        timings.points_timed_out += timeout_events
        if cache is not None:
            timings.cache_quarantined += \
                cache.quarantined - quarantined_before
        timings.workers = max(timings.workers, workers)
    if failures and on_error == "raise":
        ordered_failures = sorted(failures.values(),
                                  key=lambda failure: failure.index)
        raise SweepError(
            f"{len(ordered_failures)} of {len(points)} sweep points "
            "failed: " + "; ".join(
                f"[{f.index}] {f.workload}: {f.error}"
                for f in ordered_failures[:4]),
            failures=ordered_failures)
    return ordered


def run_cached(point: SweepPoint,
               cache: Optional[ResultCache] = None) -> SimulationResult:
    """Run (or load) a single point through the sweep machinery."""
    return run_sweep([point], cache=cache)[0]
