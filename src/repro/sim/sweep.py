"""Parallel sweep runner with a disk-backed result cache.

Every figure in the paper is a *sweep*: dozens of independent
(config, workload, seed) simulations whose results are reduced into a
table. This module runs such sweeps:

- :func:`run_sweep` fans independent points out over a
  ``ProcessPoolExecutor`` (each simulation is single-threaded pure
  Python, so process-level parallelism scales to the core count);
- completed :class:`~repro.smp.metrics.SimulationResult`s are stored in
  a content-addressed JSON cache (default ``.benchmarks/cache/``), so
  warm re-runs of a figure suite are near-instant;
- cache keys hash the *full* simulation input — workload name, scale,
  seed, every config field, and :data:`ENGINE_VERSION` — so any change
  to the machine configuration or the engine's timing semantics
  invalidates exactly the affected entries.

Cache invalidation rules: bump :data:`ENGINE_VERSION` whenever a change
alters simulated *timing or statistics* (it is part of every key; stale
entries are simply never hit again). Entries are plain JSON files named
by their key; deleting the cache directory is always safe.

Environment knobs:

- ``REPRO_SWEEP_PARALLEL=0`` forces in-process serial execution;
- ``REPRO_SWEEP_WORKERS=N`` caps the worker-process count.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import SystemConfig
from ..smp.metrics import SimulationResult

#: Bump when a change alters simulated timing or statistics; cached
#: results from other versions are never returned.
#: Version history: 1 = merged fast path; 2 = streamlined slow path +
#: deferred statistics (bit-identical results, conservatively bumped).
ENGINE_VERSION = 2

DEFAULT_CACHE_DIR = Path(".benchmarks") / "cache"


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation in a sweep."""

    workload: str              # registry name (repro.workloads)
    config: SystemConfig
    scale: float = 1.0
    seed: int = 0


def build_system(config: SystemConfig):
    """Build the machine a config describes (secure iff any layer on)."""
    from ..core.senss import build_secure_system
    from ..smp.system import SmpSystem
    if (config.senss.enabled or config.memprotect.encryption_enabled
            or config.memprotect.integrity_enabled):
        return build_secure_system(config)
    return SmpSystem(config)


def run_point(point: SweepPoint) -> SimulationResult:
    """Generate the point's workload and simulate it to completion."""
    from ..workloads.registry import generate
    workload = generate(point.workload, point.config.num_processors,
                        scale=point.scale, seed=point.seed)
    return build_system(point.config).run(workload)


@dataclass
class SweepTimings:
    """Wall-clock accounting for one :func:`run_sweep` call.

    ``run_s`` sums per-point worker seconds (it exceeds ``wall_s``
    when points ran in parallel); ``cache_s`` is time spent probing
    and loading the result cache in the coordinating process.
    """

    wall_s: float = 0.0
    run_s: float = 0.0
    cache_s: float = 0.0
    slowest_point_s: float = 0.0
    points_run: int = 0
    points_cached: int = 0
    workers: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "sweep.wall_s": round(self.wall_s, 6),
            "sweep.run_s": round(self.run_s, 6),
            "sweep.cache_s": round(self.cache_s, 6),
            "sweep.slowest_point_s": round(self.slowest_point_s, 6),
            "sweep.points_run": self.points_run,
            "sweep.points_cached": self.points_cached,
            "sweep.workers": self.workers,
        }


def _run_point_timed(point: SweepPoint
                     ) -> Tuple[SimulationResult, float]:
    """``run_point`` plus its worker-side wall-clock seconds.

    Looks ``run_point`` up as a module global (not a closed-over
    reference) so monkeypatched replacements are honored, and ships
    the measurement back with the result so the coordinator can
    aggregate per-point timings across process boundaries.
    """
    start = time.perf_counter()
    result = run_point(point)
    return result, time.perf_counter() - start


def point_key(point: SweepPoint) -> str:
    """Content hash identifying a point's complete simulation input."""
    payload = {
        "engine": ENGINE_VERSION,
        "workload": point.workload,
        "scale": point.scale,
        "seed": point.seed,
        "config": asdict(point.config),
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed JSON store of completed simulation results."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, point: SweepPoint) -> Optional[SimulationResult]:
        path = self._path(point_key(point))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # missing or torn entry: treat as a miss
        try:
            return SimulationResult(
                workload=payload["workload"],
                num_cpus=payload["num_cpus"],
                cycles=payload["cycles"],
                per_cpu_cycles=list(payload["per_cpu_cycles"]),
                stats={name: value
                       for name, value in payload["stats"].items()})
        except (KeyError, TypeError):
            return None

    def store(self, point: SweepPoint, result: SimulationResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(point_key(point))
        payload = {
            "workload": result.workload,
            "num_cpus": result.num_cpus,
            "cycles": result.cycles,
            "per_cpu_cycles": list(result.per_cpu_cycles),
            "stats": dict(result.stats),
        }
        # Write-then-rename so concurrent workers never read torn JSON.
        scratch = path.with_suffix(f".tmp{os.getpid()}")
        scratch.write_text(json.dumps(payload, sort_keys=True))
        scratch.replace(path)

    def clear(self) -> int:
        """Delete all cached entries; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json")) \
            if self.root.is_dir() else 0


def _default_workers(num_points: int) -> int:
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, min(workers, num_points))


def _parallel_enabled() -> bool:
    return os.environ.get("REPRO_SWEEP_PARALLEL", "1") != "0"


def run_sweep(points: Sequence[SweepPoint],
              cache: Optional[ResultCache] = None,
              parallel: Optional[bool] = None,
              max_workers: Optional[int] = None,
              timings: Optional[SweepTimings] = None
              ) -> List[SimulationResult]:
    """Run every point, in parallel where possible; results in order.

    Duplicate points are simulated once. With a ``cache``, previously
    completed points are loaded instead of re-run and fresh results are
    stored for the next sweep. Pass a :class:`SweepTimings` to collect
    wall-clock phase accounting (per-worker simulation seconds are
    measured inside the workers and aggregated here).
    """
    sweep_start = time.perf_counter()
    points = list(points)
    results: dict = {}
    pending: List[SweepPoint] = []
    pending_keys: set = set()
    cache_start = time.perf_counter()
    for point in points:
        key = point_key(point)
        if key in results or key in pending_keys:
            continue
        cached = cache.load(point) if cache is not None else None
        if cached is not None:
            results[key] = cached
        else:
            pending.append(point)
            pending_keys.add(key)
    cache_seconds = time.perf_counter() - cache_start

    workers = 0
    point_seconds: List[float] = []
    if pending:
        if parallel is None:
            parallel = _parallel_enabled()
        workers = _default_workers(len(pending)) if max_workers is None \
            else max(1, max_workers)
        if parallel and workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                timed = list(pool.map(_run_point_timed, pending))
        else:
            workers = 1
            timed = [_run_point_timed(point) for point in pending]
        store_start = time.perf_counter()
        for point, (result, seconds) in zip(pending, timed):
            point_seconds.append(seconds)
            results[point_key(point)] = result
            if cache is not None:
                cache.store(point, result)
        cache_seconds += time.perf_counter() - store_start

    ordered = [results[point_key(point)] for point in points]
    if timings is not None:
        timings.wall_s += time.perf_counter() - sweep_start
        timings.run_s += sum(point_seconds)
        timings.cache_s += cache_seconds
        timings.slowest_point_s = max(
            [timings.slowest_point_s] + point_seconds)
        timings.points_run += len(pending)
        timings.points_cached += len(points) - len(pending)
        timings.workers = max(timings.workers, workers)
    return ordered


def run_cached(point: SweepPoint,
               cache: Optional[ResultCache] = None) -> SimulationResult:
    """Run (or load) a single point through the sweep machinery."""
    return run_sweep([point], cache=cache)[0]
