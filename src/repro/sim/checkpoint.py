"""Checkpoint/fork execution: share simulation prefixes across points.

Sensitivity sweeps are prefix-dominated: the points of a scale axis
(or the cells of a fault campaign, or repeated tenant submissions to
the serve plane) run the *same* deterministic simulation up to the
moment a single parameter diverges, then re-pay that shared warm-up
per point. This module factors the shared part out:

- :func:`capture` pickles a **versioned machine snapshot** — the
  whole :class:`~repro.smp.system.SmpSystem` (caches + MESI state,
  SENSS masks/groups/SHUs, memprotect Merkle digests + pad caches,
  the StatsRegistry with its registered flushers, any attached
  observers/recorders) plus the scheduler state ``(clocks, cursors)``
  and the engine's raw hit counters. The scheduler heap is *derived*
  state (``repro.smp.fastpath`` rebuilds it from clocks and cursors),
  so a restored run continues bit-identically.
- :func:`restore` + :func:`fork_point` continue a target point from a
  snapshot; forked results — and recordings taken through a forked
  run — are bit-identical to cold runs (pinned by
  tests/sim/test_checkpoint.py).
- :class:`CheckpointStore` is the disk-backed, LRU-bounded store next
  to the :class:`~repro.sim.sweep.ResultCache`;
  :func:`run_chain` executes a *family* of scale-axis points
  smallest→largest, emitting a checkpoint at each point's
  first-trace-exhaustion instant (the last state shared with every
  larger scale) and forking each successor from the best one.
- :func:`serve_checkpoint_runner` is the serve plane's worker runner:
  a process-global in-memory LRU of hot snapshots over the shared
  disk store, shared across tenants like the result cache.

Soundness is checked, not assumed: a snapshot records a sha256
digest of each CPU's *consumed trace prefix* (write flags, addresses,
gaps up to the cursor). A fork validates those digests against the
target point's own traces and falls back to a cold run on any
mismatch — so workloads whose traces are not prefix-stable under
scale (fft reshapes per-phase loops with scale) are never silently
mis-forked, they just gain nothing. The family fingerprint
(:func:`family_key`) additionally pins workload name, seed, the full
config minus the backend choice, :data:`~repro.sim.sweep.ENGINE_VERSION`
and :data:`CHECKPOINT_VERSION`, so any semantic change invalidates
the store wholesale.

Trust model: snapshots are **pickles** and must only be loaded from
directories the local user controls — the same trust domain as the
ResultCache (both live under ``.benchmarks/`` by default). They are
not a wire format; the serve plane never accepts snapshots from
clients, it only shares a store across its own workers.

Forks always execute on the scalar slice engine
(:func:`repro.smp.fastpath._run_loop`) regardless of
``config.engine``: backends are bit-identical (pinned by
tests/smp/test_engine_backends.py), so the result is the same either
way and the resumable loop only exists once.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CheckpointError
from ..smp.fastpath import _finish_run, _run_loop, new_counters
from ..smp.metrics import SimulationResult
from ..smp.trace import Workload, as_columns
from .sweep import (ENGINE_VERSION, ResultCache, SweepPoint,
                    build_system, lru_gc, point_key)

#: Bump when the snapshot payload or meta layout changes — or when a
#: soundness fix must bust stores written by older code; snapshots
#: from other versions are never restored (they miss on family_key and
#: fail validates_against).
#: History: 1 = initial format; 2 = same layout, invalidates stores
#: that may hold seam snapshots poisoned by pre-fix same-scale resumes
#: (a resumed run used to re-emit at a *later* exhaustion under the
#: same scale tag — see fork_point's seam rule).
CHECKPOINT_VERSION = 2

#: First line of every checkpoint file; readable without unpickling.
MAGIC = b"repro-checkpoint 1\n"

DEFAULT_CHECKPOINT_DIR = Path(".benchmarks") / "checkpoints"


def family_key(point: SweepPoint, recorded: bool = False) -> str:
    """Content hash of everything a snapshot's prefix depends on.

    Like :func:`~repro.sim.sweep.point_key` but **excluding scale** —
    the whole point is that different scales of one (workload, seed,
    config) family share prefixes. ``recorded`` partitions the space:
    a snapshot taken with a Recorder attached carries the recorder
    inside the pickled machine, so it must never be forked into a
    plain (unrecorded) run, and vice versa.
    """
    config_payload = asdict(point.config)
    config_payload.pop("engine", None)  # backends are bit-identical
    payload = {
        "engine": ENGINE_VERSION,
        "checkpoint": CHECKPOINT_VERSION,
        "workload": point.workload,
        "seed": point.seed,
        "recorded": bool(recorded),
        "config": config_payload,
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def trace_digests(workload: Workload, cursors: Sequence[int]
                  ) -> List[str]:
    """Per-CPU sha256 over the consumed trace prefix columns.

    Machine-local (array endianness/itemsize are the platform's) —
    like the store itself, digests are not a wire format.
    """
    digests = []
    for cpu in range(workload.num_cpus):
        writes, addresses, gaps = as_columns(workload.accesses_for(cpu))
        n = cursors[cpu]
        digest = hashlib.sha256()
        digest.update(memoryview(writes)[:n])
        digest.update(memoryview(addresses)[:n])
        digest.update(memoryview(gaps)[:n])
        digests.append(digest.hexdigest())
    return digests


@dataclass
class MachineSnapshot:
    """One captured machine state: JSON meta + opaque pickle blob."""

    meta: Dict[str, object]
    blob: bytes

    @property
    def family(self) -> str:
        return str(self.meta["family"])

    @property
    def tag(self) -> str:
        return str(self.meta["tag"])

    @property
    def accesses(self) -> int:
        return int(self.meta["accesses"])


def capture(system, workload: Workload, point: SweepPoint,
            clocks: Sequence[int], cursors: Sequence[int], counters,
            tag: str, recorded: bool = False,
            extra: Optional[Dict[str, object]] = None
            ) -> MachineSnapshot:
    """Snapshot a paused run (see the resume contract in
    ``repro.smp.fastpath``). Serializes immediately — the live
    machine keeps mutating after this returns."""
    payload = {
        "system": system,
        "clocks": list(clocks),
        "cursors": list(cursors),
        "counters": [list(column) for column in counters],
    }
    blob = pickle.dumps(payload, protocol=4)
    meta = {
        "version": CHECKPOINT_VERSION,
        "engine": ENGINE_VERSION,
        "family": family_key(point, recorded=recorded),
        "workload": point.workload,
        "scale": point.scale,
        "seed": point.seed,
        "cpus": workload.num_cpus,
        "tag": str(tag),
        "cursors": list(cursors),
        "accesses": int(sum(cursors)),
        "digests": trace_digests(workload, cursors),
        "recorded": bool(recorded),
        "blob_sha256": hashlib.sha256(blob).hexdigest(),
        "extra": dict(extra or {}),
    }
    return MachineSnapshot(meta=meta, blob=blob)


def validates_against(meta: Dict[str, object],
                      workload: Workload) -> bool:
    """True when ``workload``'s traces start with the snapshot's
    consumed prefix — the condition under which a fork is sound."""
    if meta.get("version") != CHECKPOINT_VERSION \
            or meta.get("engine") != ENGINE_VERSION:
        return False
    if meta.get("cpus") != workload.num_cpus:
        return False
    cursors = list(meta.get("cursors") or ())
    digests = list(meta.get("digests") or ())
    if len(cursors) != workload.num_cpus \
            or len(digests) != workload.num_cpus:
        return False
    for cpu in range(workload.num_cpus):
        if cursors[cpu] > len(workload.accesses_for(cpu)):
            return False
    return trace_digests(workload, cursors) == digests


def restore(snapshot: MachineSnapshot):
    """Unpickle a snapshot into ``(system, clocks, cursors, counters)``.

    Raises :class:`~repro.errors.CheckpointError` on a corrupt blob.
    Only restore snapshots from trusted local stores (module
    docstring) — this executes a pickle.
    """
    blob = snapshot.blob
    expected = snapshot.meta.get("blob_sha256")
    if expected != hashlib.sha256(blob).hexdigest():
        raise CheckpointError(
            f"checkpoint blob checksum mismatch (tag "
            f"{snapshot.meta.get('tag')!r})")
    try:
        payload = pickle.loads(blob)
        system = payload["system"]
        clocks = list(payload["clocks"])
        cursors = list(payload["cursors"])
        counters = tuple(list(column)
                         for column in payload["counters"])
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint blob does not unpickle: "
            f"{type(exc).__name__}: {exc}")
    if len(counters) != 4:
        raise CheckpointError("checkpoint counters malformed")
    return system, clocks, cursors, counters


class CheckpointStore:
    """Disk-backed snapshot store, sibling of the ResultCache.

    Entries are ``<family>-<tag>.ckpt`` files: a magic line, one JSON
    meta line (readable without touching the pickle), then the blob.
    Writers stage into a pid-unique temp file and publish with atomic
    ``os.replace`` — concurrent workers of one sweep/serve plane may
    share a store. A file that fails magic, meta, or blob checksum is
    renamed to ``.corrupt`` and treated as a miss.

    ``max_mb`` bounds the store: after every write, oldest-mtime
    entries are evicted until under budget (loads touch mtime, so
    eviction is LRU). Hit/miss/store counts persist best-effort in a
    ``_stats.json`` sidecar — concurrent increments may race and lose
    counts, so the reported hit rate is approximate by design.
    """

    SUFFIX = ".ckpt"

    def __init__(self, root: Union[str, Path] = DEFAULT_CHECKPOINT_DIR,
                 max_mb: Optional[float] = None):
        self.root = Path(root)
        self.max_mb = max_mb
        self.evicted = 0

    def _path(self, family: str, tag: str) -> Path:
        return self.root / f"{family}-{tag}{self.SUFFIX}"

    # -- persistence ----------------------------------------------------

    def store(self, snapshot: MachineSnapshot) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(snapshot.family, snapshot.tag)
        scratch = path.with_suffix(f".tmp.{os.getpid()}")
        data = (MAGIC
                + json.dumps(snapshot.meta, sort_keys=True).encode()
                + b"\n" + snapshot.blob)
        try:
            scratch.write_bytes(data)
            scratch.replace(path)
        finally:
            if scratch.exists():
                try:
                    scratch.unlink()
                except OSError:
                    pass
        self._note("stores")
        self.gc()
        return path

    def _read(self, path: Path) -> Optional[MachineSnapshot]:
        try:
            with path.open("rb") as handle:
                if handle.readline() != MAGIC:
                    raise ValueError("bad magic")
                meta = json.loads(handle.readline().decode())
                blob = handle.read()
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError):
            self._quarantine(path)
            return None
        snapshot = MachineSnapshot(meta=meta, blob=blob)
        if meta.get("blob_sha256") \
                != hashlib.sha256(blob).hexdigest():
            self._quarantine(path)
            return None
        return snapshot

    def load(self, family: str, tag: str) -> Optional[MachineSnapshot]:
        snapshot = self._read(self._path(family, tag))
        if snapshot is None:
            self._note("misses")
            return None
        self._touch(self._path(family, tag))
        self._note("hits")
        return snapshot

    def _quarantine(self, path: Path) -> None:
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)  # LRU recency for gc()
        except OSError:
            pass

    # -- queries --------------------------------------------------------

    def metas(self, family: str) -> List[Dict[str, object]]:
        """Meta lines of every entry in ``family`` (blob untouched)."""
        if not self.root.is_dir():
            return []
        metas = []
        for path in sorted(self.root.glob(
                f"{family}-*{self.SUFFIX}")):
            try:
                with path.open("rb") as handle:
                    if handle.readline() != MAGIC:
                        continue
                    metas.append(json.loads(
                        handle.readline().decode()))
            except (OSError, ValueError):
                continue
        return metas

    def best(self, family: str, workload: Workload
             ) -> Optional[MachineSnapshot]:
        """The deepest stored snapshot whose prefix validates against
        ``workload``; candidates that fail validation or loading fall
        through to the next-best, then to ``None`` (= run cold).

        Validation is lazy, deepest-first: each check hashes the
        candidate's whole consumed prefix, so validating every entry
        of a long scale chain up front would cost quadratically in
        chain length — and the deepest candidate is the one that
        validates in every non-corrupt case anyway.
        """
        candidates = sorted(
            self.metas(family),
            key=lambda meta: (-int(meta.get("accesses", 0)),
                              str(meta.get("tag"))))
        loads_counted = False
        for meta in candidates:
            if not validates_against(meta, workload):
                continue
            hit = self.load(family, str(meta.get("tag")))
            loads_counted = True
            if hit is not None:
                return hit
        if not loads_counted:
            self._note("misses")  # load() never ran, count the probe
        return None

    # -- bounding + stats ----------------------------------------------

    def gc(self) -> int:
        """Evict oldest entries until under ``max_mb``; returns count."""
        if self.max_mb is None:
            return 0
        evicted = lru_gc(self.root, int(self.max_mb * 1024 * 1024),
                         f"*{self.SUFFIX}")
        self.evicted += evicted
        return evicted

    def _note(self, field: str, delta: int = 1) -> None:
        """Best-effort sidecar counter bump (approximate under races)."""
        path = self.root / "_stats.json"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                payload = {}
            payload[field] = int(payload.get(field, 0)) + delta
            scratch = path.with_suffix(f".tmp.{os.getpid()}")
            scratch.write_text(json.dumps(payload, sort_keys=True))
            scratch.replace(path)
        except OSError:
            pass

    def stats(self) -> Dict[str, object]:
        """Entry count, byte size and (approximate) hit rate."""
        count = 0
        size = 0
        if self.root.is_dir():
            for path in self.root.glob(f"*{self.SUFFIX}"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                count += 1
        try:
            sidecar = json.loads(
                (self.root / "_stats.json").read_text())
        except (OSError, ValueError):
            sidecar = {}
        hits = int(sidecar.get("hits", 0))
        misses = int(sidecar.get("misses", 0))
        probes = hits + misses
        return {
            "count": count,
            "bytes": size,
            "hits": hits,
            "misses": misses,
            "stores": int(sidecar.get("stores", 0)),
            "hit_rate": round(hits / probes, 4) if probes else None,
        }

    def clear(self) -> int:
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob(f"*{self.SUFFIX}"):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"*{self.SUFFIX}")) \
            if self.root.is_dir() else 0


def _scale_tag(scale: float) -> str:
    return format(float(scale), "g")


def _generate(point: SweepPoint) -> Workload:
    from ..workloads.registry import generate
    return generate(point.workload, point.config.num_processors,
                    scale=point.scale, seed=point.seed)


def _fresh_state(point: SweepPoint, workload: Workload,
                 recorded: bool):
    """A cold machine at cycle zero (recorder attached if asked)."""
    system = build_system(point.config)
    if recorded:
        from ..obs.recording import Recorder
        Recorder().attach(system)
    num_cpus = workload.num_cpus
    return (system, [0] * num_cpus, [0] * num_cpus,
            new_counters(num_cpus))


@dataclass
class ForkOutcome:
    """What :func:`fork_point` did: the result, whether the run forked
    from a snapshot (vs. going cold), whether it emitted a new
    snapshot, and the live machine (for recorded runs, its ``_obs``
    is the recorder to build the Recording from)."""

    result: SimulationResult
    forked: bool
    emitted: bool
    system: object


def fork_point(point: SweepPoint,
               snapshot: Optional[MachineSnapshot],
               workload: Optional[Workload] = None,
               store: Optional[CheckpointStore] = None,
               recorded: bool = False,
               hot: Optional["HotSnapshotLRU"] = None) -> ForkOutcome:
    """Run ``point`` to completion, from ``snapshot`` if it validates.

    ``forked`` is False when the snapshot was absent or failed digest
    validation and the run went cold. With a ``store`` (and/or a
    ``hot`` in-memory LRU), a new snapshot is emitted at the run's
    first-trace-exhaustion instant, tagged by this point's scale,
    extending the family's prefix chain for larger scales — **unless**
    some cursor already sits at its trace end when the run starts
    (e.g. resuming from this scale's own seam snapshot): the run's
    next exhaustion event is then a *later* one, not the
    family-shared seam, so emitting would overwrite the valid
    same-tag snapshot with a state no cold run of a larger scale
    ever passes through. In that case nothing is emitted; the seam
    for this scale is already stored.
    """
    if workload is None:
        workload = _generate(point)
    forked = False
    if snapshot is not None and validates_against(snapshot.meta,
                                                  workload):
        system, clocks, cursors, counters = restore(snapshot)
        forked = True
    else:
        system, clocks, cursors, counters = _fresh_state(
            point, workload, recorded)

    # Seam rule (docstring above): a cursor already at its trace end
    # means the loop's on_first_exhaustion fires at a later, non-seam
    # exhaustion — reachable via serve resubmission of one scale or a
    # chain retry after a crash between snapshot emit and cache store.
    # Emitting there would poison the stored seam snapshot.
    past_seam = any(
        cursors[cpu] >= len(workload.accesses_for(cpu))
        for cpu in range(workload.num_cpus))

    emit = None
    emitted = []
    if (store is not None or hot is not None) and not past_seam:
        def emit() -> None:
            shot = capture(system, workload, point, clocks, cursors,
                           counters, tag=_scale_tag(point.scale),
                           recorded=recorded)
            if store is not None:
                store.store(shot)
            if hot is not None:
                hot.put(shot)
            emitted.append(True)

    _run_loop(system, workload, clocks, cursors, counters,
              on_first_exhaustion=emit)
    result = _finish_run(system, workload, clocks, counters)
    return ForkOutcome(result=result, forked=forked,
                       emitted=bool(emitted), system=system)


def run_chain(points: Sequence[SweepPoint], store: CheckpointStore,
              cache: Optional[ResultCache] = None,
              record_dir: Optional[Union[str, Path]] = None
              ) -> List[Tuple[Optional[SimulationResult], float,
                              Optional[str]]]:
    """Execute one family of points, sharing prefixes through ``store``.

    The caller orders points smallest scale first (see
    ``repro.sim.sweep._family_units``); each point forks from the
    deepest stored snapshot that validates against its traces and
    emits its own first-exhaustion snapshot for its successors. One
    point failing never aborts the chain — later points still fork
    from whatever snapshots exist. Cache probe/store happen here,
    worker-side, so a retried chain (e.g. after a mid-fork worker
    kill) resumes from both the finished results and the on-disk
    snapshots of its first life.

    Returns ``[(result | None, seconds, error | None), ...]`` in
    input order.
    """
    recorded = record_dir is not None
    outcomes: List[Tuple[Optional[SimulationResult], float,
                         Optional[str]]] = []
    for point in points:
        # Chaos-harness seam, same as _run_point_timed: a chain run
        # must be killable mid-fork (docs/resilience.md).
        if "REPRO_CHAOS_PLAN" in os.environ:
            from ..chaos.hooks import apply_worker_faults
            apply_worker_faults(point)
        start = time.perf_counter()
        try:
            if cache is not None:
                cached = cache.load(point)
                if cached is not None and (
                        not recorded
                        or (Path(record_dir)
                            / f"{point_key(point)}.rec.json").exists()):
                    outcomes.append(
                        (cached, time.perf_counter() - start, None))
                    continue
            workload = _generate(point)
            snapshot = store.best(
                family_key(point, recorded=recorded), workload)
            outcome = fork_point(point, snapshot, workload=workload,
                                 store=store, recorded=recorded)
            result = outcome.result
            if recorded:
                from ..obs.recording import Recording
                # The recorder travelled inside the machine (pickled
                # with the prefix, appending through the tail), so
                # the recording covers the run from cycle zero —
                # byte-identical to a cold recorded run.
                recorder = outcome.system._obs
                if recorder is None:
                    raise CheckpointError(
                        "recorded chain point finished without a "
                        f"recorder: {point.workload}@{point.scale}")
                recording = Recording.build(point, recorder, result)
                Path(record_dir).mkdir(parents=True, exist_ok=True)
                recording.save(Path(record_dir)
                               / f"{point_key(point)}.rec.json")
                result = recording.to_result()
            if cache is not None:
                cache.store(point, result)
            outcomes.append(
                (result, time.perf_counter() - start, None))
        except Exception as exc:  # captured per point, chain goes on
            outcomes.append(
                (None, 0.0, f"{type(exc).__name__}: {exc}"))
    return outcomes


class HotSnapshotLRU:
    """Bounded in-memory snapshot cache for serve-plane workers.

    One instance lives per worker *process* (module global below) and
    fronts the shared disk store: repeated tenant submissions of the
    same family fork from memory without re-reading or re-unpickling.
    Thread-safe; capacity is a snapshot count, eviction is
    least-recently-used.
    """

    def __init__(self, capacity: int = 8):
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], MachineSnapshot]" \
            = OrderedDict()

    def put(self, snapshot: MachineSnapshot) -> None:
        key = (snapshot.family, snapshot.tag)
        with self._lock:
            self._entries[key] = snapshot
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def best(self, family: str, workload: Workload
             ) -> Optional[MachineSnapshot]:
        with self._lock:
            candidates = [snap for (fam, _tag), snap
                          in self._entries.items() if fam == family]
        candidates = [snap for snap in candidates
                      if validates_against(snap.meta, workload)]
        if not candidates:
            return None
        candidates.sort(key=lambda snap: (-snap.accesses, snap.tag))
        hit = candidates[0]
        with self._lock:
            key = (hit.family, hit.tag)
            if key in self._entries:
                self._entries.move_to_end(key)
        return hit

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Per-process hot cache shared by every serve runner call in this
#: worker — intentionally a process global, like an executor's warm
#: interpreter state. Sized by the first call.
_HOT: Optional[HotSnapshotLRU] = None
_HOT_LOCK = threading.Lock()


def _hot_lru(capacity: int) -> HotSnapshotLRU:
    global _HOT
    with _HOT_LOCK:
        if _HOT is None:
            _HOT = HotSnapshotLRU(capacity)
        return _HOT


def serve_checkpoint_runner(checkpoint_dir: str, hot_capacity: int,
                            point: SweepPoint
                            ) -> Tuple[SimulationResult, float,
                                       Dict[str, int]]:
    """Worker runner for the serve plane's checkpoint mode.

    Drop-in for ``repro.sim.sweep._run_point_timed`` (module-level,
    ``functools.partial``-able into process pools) that probes the
    per-process hot LRU, then the shared disk store, forks when a
    prefix validates, and ships ``serve.checkpoint_*`` counter deltas
    back for ``/v1/metrics`` and the Perfetto counter track.
    """
    if "REPRO_CHAOS_PLAN" in os.environ:
        from ..chaos.hooks import apply_worker_faults
        apply_worker_faults(point)
    start = time.perf_counter()
    store = CheckpointStore(checkpoint_dir)
    hot = _hot_lru(hot_capacity)
    workload = _generate(point)
    family = family_key(point)
    snapshot = hot.best(family, workload)
    if snapshot is None:
        snapshot = store.best(family, workload)
        if snapshot is not None:
            hot.put(snapshot)
    outcome = fork_point(point, snapshot, workload=workload,
                         store=store, hot=hot)
    counters = {
        "serve.checkpoint_hits": 1 if outcome.forked else 0,
        "serve.checkpoint_misses": 0 if outcome.forked else 1,
        "serve.checkpoint_stores": 1 if outcome.emitted else 0,
    }
    return outcome.result, time.perf_counter() - start, counters
