"""A minimal discrete-event queue.

The SMP timing model is mostly quasi-synchronous (processor clocks
advance through an atomic bus), but background activities — posted
write-backs, mask regeneration completions, deferred authentication —
are naturally expressed as timestamped events. This queue provides
deterministic FIFO tie-breaking for simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError


class EventQueue:
    """Priority queue of (time, callback) with stable ordering."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Callable[[], Any]]] = []
        self._sequence = itertools.count()
        self._now = 0

    @property
    def now(self) -> int:
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to fire at absolute cycle ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time}, now is {self._now}")
        heapq.heappush(self._heap, (time, next(self._sequence), callback))

    def schedule_after(self, delay: int,
                       callback: Callable[[], Any]) -> None:
        self.schedule(self._now + delay, callback)

    def peek_time(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def run_until(self, time: int) -> int:
        """Fire all events with timestamp <= ``time``; returns count."""
        fired = 0
        while self._heap and self._heap[0][0] <= time:
            event_time, _, callback = heapq.heappop(self._heap)
            self._now = event_time
            callback()
            fired += 1
        self._now = max(self._now, time)
        return fired

    def run_all(self, limit: int = 10_000_000) -> int:
        """Drain the queue entirely (bounded against runaway loops)."""
        fired = 0
        while self._heap:
            event_time, _, callback = heapq.heappop(self._heap)
            self._now = event_time
            callback()
            fired += 1
            if fired > limit:
                raise SimulationError("event limit exceeded; likely a loop")
        return fired
