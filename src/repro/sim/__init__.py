"""Simulation kernel: statistics, deterministic randomness, event
queue, and the parallel sweep runner."""

from .events import EventQueue
from .rng import DeterministicRng
from .stats import Counter, StatsRegistry
from .sweep import (ENGINE_VERSION, ResultCache, SweepPoint,
                    SweepPointFailure, SweepTimings, build_system,
                    point_key, run_cached, run_point, run_sweep)

__all__ = ["Counter", "DeterministicRng", "ENGINE_VERSION", "EventQueue",
           "ResultCache", "StatsRegistry", "SweepPoint",
           "SweepPointFailure", "SweepTimings", "build_system",
           "point_key", "run_cached", "run_point", "run_sweep"]
