"""Simulation kernel: statistics, deterministic randomness, event queue."""

from .events import EventQueue
from .rng import DeterministicRng
from .stats import Counter, StatsRegistry

__all__ = ["Counter", "DeterministicRng", "EventQueue", "StatsRegistry"]
