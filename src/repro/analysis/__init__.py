"""Analysis helpers: hardware-overhead accounting, report tables,
variability studies."""

from .overhead import HardwareOverheadReport, compute_overhead
from .report import format_table
from .variability import AccessRecorder, compare_orderings

__all__ = ["AccessRecorder", "HardwareOverheadReport", "compare_orderings",
           "compute_overhead", "format_table"]
