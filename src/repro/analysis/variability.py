"""Simulation variability analysis (section 7.8, Figure 11).

The paper stresses that multiprocessor timing simulations are not
deterministic under parameter changes: a 3-cycle bus-delay increase
reorders racy accesses, flipping hits to misses (and sometimes making
the *secured* machine faster). Our simulator is deterministic for a
fixed configuration, but changing the configuration (baseline vs
SENSS) reorders the global interleaving exactly as Figure 11 shows.
These helpers record and diff the interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..bus.transaction import BusTransaction


@dataclass
class AccessRecorder:
    """Bus observer that logs (grant_cycle, cpu, type, address)."""

    events: List[Tuple[int, int, str, int]] = field(default_factory=list)

    def __call__(self, transaction: BusTransaction) -> None:
        self.events.append((transaction.grant_cycle,
                            transaction.source_pid,
                            transaction.type.value,
                            transaction.address))

    def order_signature(self) -> List[Tuple[int, str, int]]:
        """The global transaction order, timing stripped."""
        return [(cpu, kind, address)
                for _, cpu, kind, address in self.events]

    def per_cpu_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for _, cpu, _, _ in self.events:
            counts[cpu] = counts.get(cpu, 0) + 1
        return counts


def compare_orderings(base: AccessRecorder,
                      secured: AccessRecorder) -> Dict[str, object]:
    """Quantify how much the global bus order changed between runs."""
    base_order = base.order_signature()
    secured_order = secured.order_signature()
    common = min(len(base_order), len(secured_order))
    divergence_at = common
    for index in range(common):
        if base_order[index] != secured_order[index]:
            divergence_at = index
            break
    return {
        "base_transactions": len(base_order),
        "secured_transactions": len(secured_order),
        "first_divergence": divergence_at,
        "identical_prefix_fraction":
            divergence_at / common if common else 1.0,
        "reordered": base_order != secured_order,
    }
