"""Workload characterization (supporting the §7.2 methodology).

The paper's overheads are functions of workload properties — miss
rates, the cache-to-cache share of bus traffic, write intensity. This
module measures those properties for any workload on any machine
configuration, both to sanity-check the synthetic SPLASH-2 stand-ins
(DESIGN.md §2) and to explain per-workload differences in the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import SystemConfig
from ..smp.system import SmpSystem
from ..smp.trace import Workload


@dataclass(frozen=True)
class WorkloadProfile:
    """Static + dynamic characterization of one workload run."""

    name: str
    num_cpus: int
    references: int
    write_fraction: float
    shared_fraction: float
    unique_lines: int
    l2_miss_rate: float
    cache_to_cache_share: float
    upgrades_per_kref: float
    writebacks_per_kref: float
    bus_utilisation: float
    cycles_per_reference: float

    def rows(self) -> List[List[str]]:
        return [[
            self.name,
            str(self.references),
            f"{self.write_fraction:.1%}",
            f"{self.shared_fraction:.1%}",
            str(self.unique_lines),
            f"{self.l2_miss_rate:.2%}",
            f"{self.cache_to_cache_share:.1%}",
            f"{self.upgrades_per_kref:.2f}",
            f"{self.writebacks_per_kref:.2f}",
            f"{self.bus_utilisation:.1%}",
            f"{self.cycles_per_reference:.1f}",
        ]]

    @staticmethod
    def header() -> List[str]:
        return ["workload", "refs", "writes", "shared", "lines",
                "L2 miss", "c2c share", "upgr/kref", "wb/kref",
                "bus util", "cyc/ref"]


def characterize(workload: Workload,
                 config: SystemConfig) -> WorkloadProfile:
    """Run the workload on an insecure machine and profile it."""
    from ..workloads.base import PRIVATE_BASE

    writes = shared = 0
    lines = set()
    line_bytes = config.l2.line_bytes
    for _, access in workload.iter_flat():
        if access.is_write:
            writes += 1
        if access.address < PRIVATE_BASE:
            shared += 1
        lines.add(access.address // line_bytes)

    system = SmpSystem(config.with_senss(False))
    result = system.run(workload)
    references = workload.total_accesses
    misses = sum(result.stat(f"cpu{cpu}.l2_miss")
                 for cpu in range(workload.num_cpus))
    data_tx = (result.stat("bus.tx.BusRd")
               + result.stat("bus.tx.BusRdX")
               + result.stat("bus.tx.WB"))
    occupancy = (data_tx * 3 * config.bus.cycle_cpu_cycles
                 + result.stat("bus.tx.BusUpgr")
                 * config.bus.cycle_cpu_cycles)
    total_tx = max(1, result.total_bus_transactions)
    return WorkloadProfile(
        name=workload.name,
        num_cpus=workload.num_cpus,
        references=references,
        write_fraction=writes / references if references else 0.0,
        shared_fraction=shared / references if references else 0.0,
        unique_lines=len(lines),
        l2_miss_rate=misses / references if references else 0.0,
        cache_to_cache_share=(result.cache_to_cache_transfers
                              / total_tx),
        upgrades_per_kref=(1000.0 * result.stat("bus.tx.BusUpgr")
                           / references if references else 0.0),
        writebacks_per_kref=(1000.0 * result.stat("bus.tx.WB")
                             / references if references else 0.0),
        bus_utilisation=(occupancy / result.cycles
                         if result.cycles else 0.0),
        cycles_per_reference=(result.cycles / references *
                              workload.num_cpus if references else 0.0),
    )


def characterize_suite(workloads: Dict[str, Workload],
                       config: SystemConfig) -> List[WorkloadProfile]:
    return [characterize(workload, config)
            for workload in workloads.values()]
