"""Hardware overhead accounting — section 7.1 of the paper.

Reproduces the published numbers exactly, because they are arithmetic
over the design parameters:

- group-processor bit matrix: 1024 entries x 5 bits = **640 bytes**;
- group information table: 1 + 128 + 8 + 8x128 = **1161 bits/entry**,
  **148.6 KB** for 1024 entries;
- bus lines: Gigaplane's 378 lines + 2 (message type) + 10 (GID)
  = **+3.1%**;
- per-message delay: 1 sender cycle + 2 receiver cycles = **3 cycles**.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..core.groups import GroupInfoTable, GroupProcessorBitMatrix


@dataclass(frozen=True)
class HardwareOverheadReport:
    bit_matrix_bytes: float
    table_bits_per_entry: int
    table_total_kb: float
    baseline_bus_lines: int
    extra_type_lines: int
    extra_gid_lines: int
    bus_line_increase_percent: float
    per_message_cycles: int
    max_masks: int

    def rows(self):
        return [
            ("Group-processor bit matrix", f"{self.bit_matrix_bytes:.0f} B"),
            ("Group info table (bits/entry)",
             f"{self.table_bits_per_entry} bits"),
            ("Group info table (total)", f"{self.table_total_kb:.1f} KB"),
            ("Baseline bus lines", str(self.baseline_bus_lines)),
            ("Extra lines (type + GID)",
             f"{self.extra_type_lines} + {self.extra_gid_lines}"),
            ("Bus line increase", f"{self.bus_line_increase_percent:.1f}%"),
            ("Per-message bus delay", f"{self.per_message_cycles} cycles"),
            ("Max useful masks", str(self.max_masks)),
        ]


def compute_overhead(config: SystemConfig) -> HardwareOverheadReport:
    """Derive the section 7.1 hardware-cost table from a configuration."""
    matrix = GroupProcessorBitMatrix(config.senss.max_groups,
                                     config.senss.max_processors)
    table = GroupInfoTable(config.senss.max_groups)
    extra_type_lines = 2   # "00"/"01"/"10" message-type encodings
    extra_gid_lines = (config.senss.max_groups - 1).bit_length()
    baseline = config.bus.total_lines
    increase = 100.0 * (extra_type_lines + extra_gid_lines) / baseline
    return HardwareOverheadReport(
        bit_matrix_bytes=matrix.storage_bits() / 8.0,
        table_bits_per_entry=table.storage_bits_per_entry(),
        # Decimal kilobytes, matching the paper's "148.6KB".
        table_total_kb=table.storage_bytes_total() / 1000.0,
        baseline_bus_lines=baseline,
        extra_type_lines=extra_type_lines,
        extra_gid_lines=extra_gid_lines,
        bus_line_increase_percent=increase,
        per_message_cycles=config.senss.per_message_overhead_cycles,
        max_masks=config.max_masks,
    )
