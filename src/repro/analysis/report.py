"""Plain-text table rendering for the bench harnesses.

Every bench prints the same rows/series the paper's figure reports, so
EXPERIMENTS.md can be filled by copying bench output.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(title: str, header: Sequence[str],
                 rows: List[Sequence[object]]) -> str:
    """Render an aligned ASCII table with a title rule."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(name) for name in header]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def line(row):
        return "  ".join(value.ljust(widths[column])
                         for column, value in enumerate(row)).rstrip()

    rule = "-" * min(78, sum(widths) + 2 * (len(widths) - 1))
    parts = [title, rule, line(header), rule]
    parts.extend(line(row) for row in cells)
    parts.append(rule)
    return "\n".join(parts)


def format_percent(value: float) -> str:
    return f"{value:+.3f}%"
