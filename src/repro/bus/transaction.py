"""Bus transaction vocabulary.

Baseline MESI transactions plus the three SENSS message types that
section 7.1 adds to the command bus:

- type "00": bus authentication message (MAC broadcast),
- type "01": pad invalidate message,
- type "10": pad request message.

Hash-tree invalidation and requests ride on the normal coherence
transactions because hashes live in L2 ("Hash invalidation and request
do not need extra signals", section 7.1).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional


class TransactionType(Enum):
    # Baseline coherence traffic.
    BUS_READ = "BusRd"              # read miss
    BUS_READ_EXCLUSIVE = "BusRdX"   # write miss
    BUS_UPGRADE = "BusUpgr"         # S->M, address-only
    WRITEBACK = "WB"                # dirty eviction to memory
    # SENSS additions (section 7.1 command encodings).
    AUTH_MAC = "Auth00"             # MAC broadcast ("00")
    PAD_INVALIDATE = "PadInv01"     # fast-memory-encryption pad inval ("01")
    PAD_REQUEST = "PadReq10"        # pad fetch ("10")
    # Memory-integrity hash tree traffic (normal reads, tagged for stats).
    HASH_FETCH = "HashFetch"
    HASH_WRITEBACK = "HashWB"

    @property
    def command_encoding(self) -> Optional[str]:
        """The SENSS 2-bit extra command encoding, if any (section 7.1)."""
        return {TransactionType.AUTH_MAC: "00",
                TransactionType.PAD_INVALIDATE: "01",
                TransactionType.PAD_REQUEST: "10"}.get(self)


# Per-member classification flags, precomputed once: the bus and the
# security layer consult these on every transaction, so they are plain
# attributes rather than properties recomputing tuple membership.
_DATA_TYPES = frozenset((
    TransactionType.BUS_READ,
    TransactionType.BUS_READ_EXCLUSIVE,
    TransactionType.WRITEBACK,
    TransactionType.AUTH_MAC,
    TransactionType.PAD_REQUEST,
    TransactionType.HASH_FETCH,
    TransactionType.HASH_WRITEBACK,
))
#: address-only (or digest-only) messages with the fixed 2-bus-cycle
#: requester-visible latency (see SharedBus.base_latency)
_SHORT_TYPES = frozenset((
    TransactionType.BUS_UPGRADE,
    TransactionType.PAD_INVALIDATE,
    TransactionType.AUTH_MAC,
))
#: line movement to/from memory (everything the ``bus.with_memory``
#: traffic counter tracks; security messages are counted by type only)
_MEMORY_DATA_TYPES = frozenset((
    TransactionType.BUS_READ,
    TransactionType.BUS_READ_EXCLUSIVE,
    TransactionType.WRITEBACK,
    TransactionType.HASH_FETCH,
    TransactionType.HASH_WRITEBACK,
))
for _member in TransactionType:
    #: whether a data block rides with the transaction
    _member.carries_data = _member in _DATA_TYPES
    _member.is_short_message = _member in _SHORT_TYPES
    _member.is_memory_data = _member in _MEMORY_DATA_TYPES
    #: per-type stats counter name; also the key the bus's deferred
    #: traffic accounting buckets by (string hashing is much cheaper
    #: than Enum.__hash__ on the per-transaction issue path)
    _member.counter_name = f"bus.tx.{_member.value}"


class BusTransaction:
    """One atomic transaction granted on the shared bus.

    A plain ``__slots__`` record: transactions are created (or reused)
    on every miss, upgrade, write-back and security message, so the
    slow path wants the cheapest possible construction — no dataclass
    machinery, no ``__dict__``.
    """

    __slots__ = ("type", "address", "source_pid", "group_id",
                 "issue_cycle", "grant_cycle", "complete_cycle",
                 "supplied_by_cache", "payload", "sequence")

    def __init__(self, type: TransactionType, address: int,
                 source_pid: int, group_id: int = 0,
                 issue_cycle: int = 0, grant_cycle: int = 0,
                 complete_cycle: int = 0,
                 supplied_by_cache: bool = False,
                 payload: Optional[bytes] = None,
                 sequence: int = -1):
        self.type = type
        self.address = address
        self.source_pid = source_pid
        self.group_id = group_id
        self.issue_cycle = issue_cycle
        self.grant_cycle = grant_cycle
        self.complete_cycle = complete_cycle
        self.supplied_by_cache = supplied_by_cache  # cache-to-cache vs memory
        self.payload = payload                      # functional mode only
        self.sequence = sequence

    @property
    def is_cache_to_cache(self) -> bool:
        """A data block moved between processor caches on this grant."""
        return self.type.carries_data and self.supplied_by_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BusTransaction({self.type.value}, addr={self.address:#x}, "
                f"pid={self.source_pid}, gid={self.group_id}, "
                f"seq={self.sequence})")
