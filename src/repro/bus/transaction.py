"""Bus transaction vocabulary.

Baseline MESI transactions plus the three SENSS message types that
section 7.1 adds to the command bus:

- type "00": bus authentication message (MAC broadcast),
- type "01": pad invalidate message,
- type "10": pad request message.

Hash-tree invalidation and requests ride on the normal coherence
transactions because hashes live in L2 ("Hash invalidation and request
do not need extra signals", section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class TransactionType(Enum):
    # Baseline coherence traffic.
    BUS_READ = "BusRd"              # read miss
    BUS_READ_EXCLUSIVE = "BusRdX"   # write miss
    BUS_UPGRADE = "BusUpgr"         # S->M, address-only
    WRITEBACK = "WB"                # dirty eviction to memory
    # SENSS additions (section 7.1 command encodings).
    AUTH_MAC = "Auth00"             # MAC broadcast ("00")
    PAD_INVALIDATE = "PadInv01"     # fast-memory-encryption pad inval ("01")
    PAD_REQUEST = "PadReq10"        # pad fetch ("10")
    # Memory-integrity hash tree traffic (normal reads, tagged for stats).
    HASH_FETCH = "HashFetch"
    HASH_WRITEBACK = "HashWB"

    @property
    def carries_data(self) -> bool:
        """Whether a data block rides with the transaction."""
        return self in (TransactionType.BUS_READ,
                        TransactionType.BUS_READ_EXCLUSIVE,
                        TransactionType.WRITEBACK,
                        TransactionType.AUTH_MAC,
                        TransactionType.PAD_REQUEST,
                        TransactionType.HASH_FETCH,
                        TransactionType.HASH_WRITEBACK)

    @property
    def command_encoding(self) -> Optional[str]:
        """The SENSS 2-bit extra command encoding, if any (section 7.1)."""
        return {TransactionType.AUTH_MAC: "00",
                TransactionType.PAD_INVALIDATE: "01",
                TransactionType.PAD_REQUEST: "10"}.get(self)


@dataclass
class BusTransaction:
    """One atomic transaction granted on the shared bus."""

    type: TransactionType
    address: int
    source_pid: int
    group_id: int = 0
    issue_cycle: int = 0
    grant_cycle: int = 0
    complete_cycle: int = 0
    supplied_by_cache: bool = False   # cache-to-cache vs memory
    payload: Optional[bytes] = None   # functional mode only
    sequence: int = field(default=-1)

    @property
    def is_cache_to_cache(self) -> bool:
        """A data block moved between processor caches on this grant."""
        return self.type.carries_data and self.supplied_by_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BusTransaction({self.type.value}, addr={self.address:#x}, "
                f"pid={self.source_pid}, gid={self.group_id}, "
                f"seq={self.sequence})")
