"""Shared snooping bus substrate."""

from .bus import SharedBus
from .transaction import BusTransaction, TransactionType

__all__ = ["BusTransaction", "SharedBus", "TransactionType"]
