"""The shared snooping bus: arbitration, occupancy, traffic accounting.

The model is an atomic split of *occupancy* and *latency*:

- **Occupancy** is how long the bus is held by a transaction (an
  address cycle plus data cycles at the 3.2 GB/s, 32 B-per-bus-cycle
  rate of Figure 5). Occupancy serializes transactions and produces
  contention.
- **Latency** is when the *requester* gets its answer: 120 cycles for
  an uncontended cache-to-cache transfer, 180 cycles for memory
  (Figure 5), counted from grant.

SENSS security hooks (per-message +3 cycles, mask-readiness stalls,
MAC broadcasts) are layered on by :class:`repro.core.senss.SenssBusLayer`
via the ``security_layer`` attachment so the baseline bus stays
security-free.

Traffic accounting is deferred (DESIGN.md §6c): the issue path bumps
plain integers and a flusher registered with the
:class:`~repro.sim.stats.StatsRegistry` materializes the named
counters on read, so per-transaction cost stays off the string-keyed
stats machinery.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import BusConfig
from ..errors import BusError
from ..sim.stats import StatsRegistry
from .transaction import BusTransaction, TransactionType


class SharedBus:
    """Atomic snooping bus shared by all processors and the memory."""

    def __init__(self, config: BusConfig,
                 stats: Optional[StatsRegistry] = None):
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        # Hot config fields bound once: the issue path runs per bus
        # transaction and should not chase the config dataclass.
        self._cycle = config.cycle_cpu_cycles
        self._line_bytes = config.line_bytes
        self._c2c_latency = config.cache_to_cache_latency
        self._mem_latency = config.cache_to_memory_latency
        self._split = config.split_transaction
        self._free_at = 0
        self._data_free_at = 0  # split-transaction mode only
        self._sequence = 0
        self._observers: List[Callable[[BusTransaction], None]] = []
        self.security_layer = None  # set by SenssBusLayer.attach()
        # Optional fault-injection probe (repro.faults.FaultInjector):
        # consulted on every granted transaction, after observers but
        # before the security layer's after_transfer so the injector
        # sees the data message before any MAC broadcast it triggers.
        self.fault_hook = None
        # Deferred traffic counters, drained by _flush_stats on any
        # registry read. Only transaction types actually issued get a
        # _pending_by_type entry (keyed by the precomputed counter
        # name), preserving lazy counter creation.
        self._pending_transactions = 0
        self._pending_c2c = 0
        self._pending_with_memory = 0
        self._pending_by_type: Dict[str, int] = {}
        self.stats.register_flusher(self._flush_stats)

    # -- observation -----------------------------------------------------

    def add_observer(self, observer: Callable[[BusTransaction], None]) -> None:
        """Observers see every granted transaction (snoopers, attackers,
        metrics probes). Called after state effects are resolved."""
        self._observers.append(observer)

    def remove_observer(self,
                        observer: Callable[[BusTransaction], None]) -> None:
        """Detach a previously added observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    # -- timing helpers ----------------------------------------------------

    @property
    def free_at(self) -> int:
        return self._free_at

    def occupancy_cycles(self, transaction_type: TransactionType,
                         data_bytes: int) -> int:
        """Bus hold time in CPU cycles: 1 address cycle + data cycles."""
        cycles = self.config.cycle_cpu_cycles  # address/command cycle
        if transaction_type.carries_data and data_bytes > 0:
            data_cycles = -(-data_bytes // self.config.line_bytes)
            cycles += data_cycles * self.config.cycle_cpu_cycles
        return cycles

    def base_latency(self, transaction: BusTransaction) -> int:
        """Uncontended requester-visible latency from grant (Figure 5)."""
        if transaction.type.is_short_message:
            # Address-only coherence/pad messages and the 16-byte MAC
            # digest broadcast: two bus cycles.
            return 2 * self.config.cycle_cpu_cycles
        if transaction.supplied_by_cache:
            return self.config.cache_to_cache_latency
        return self.config.cache_to_memory_latency

    # -- the one entry point ------------------------------------------------

    def issue(self, transaction: BusTransaction, request_cycle: int,
              data_bytes: int) -> BusTransaction:
        """Arbitrate, occupy, snoop and complete one transaction.

        Returns the transaction with ``grant_cycle`` / ``complete_cycle``
        filled in. The caller has already resolved who supplies the data
        (``supplied_by_cache``) by consulting the coherence protocol.
        """
        if request_cycle < 0:
            raise BusError("request cycle must be non-negative")
        cycle = self._cycle
        tx_type = transaction.type
        transaction.issue_cycle = request_cycle
        grant = max(request_cycle, self._free_at)
        transaction.grant_cycle = grant
        transaction.sequence = self._sequence
        self._sequence += 1

        carries = tx_type.carries_data and data_bytes > 0
        if tx_type.is_short_message:
            latency = 2 * cycle
        elif transaction.supplied_by_cache:
            latency = self._c2c_latency
        else:
            latency = self._mem_latency

        security_layer = self.security_layer
        if security_layer is not None:
            # The security layer may stall the transfer (mask readiness)
            # and adds its fixed per-message overhead; it also injects
            # MAC broadcasts, which recursively occupy the bus.
            latency += security_layer.before_transfer(transaction, grant)

        if self._split:
            # Gigaplane-style: the address bus is held for one cycle
            # per transaction; the data phase queues on the separate
            # data bus and the requester waits for its slot.
            self._free_at = grant + cycle
            if carries:
                data_cycles = -(-data_bytes // self._line_bytes) * cycle
                data_start = max(grant, self._data_free_at)
                self._data_free_at = data_start + data_cycles
                latency += data_start - grant
            transaction.complete_cycle = grant + latency
        else:
            occupancy = cycle
            if carries:
                occupancy += -(-data_bytes // self._line_bytes) * cycle
            self._free_at = grant + occupancy
            transaction.complete_cycle = grant + latency

        # Deferred traffic accounting (flushed on any stats read).
        self._pending_transactions += 1
        by_type = self._pending_by_type
        name = tx_type.counter_name
        by_type[name] = by_type.get(name, 0) + 1
        if transaction.supplied_by_cache and tx_type.carries_data:
            self._pending_c2c += 1
        elif tx_type.is_memory_data:
            # Line movement to/from memory. Security messages (MAC
            # broadcasts, pad requests) are counted by type only.
            self._pending_with_memory += 1

        for observer in self._observers:
            observer(transaction)
        if self.fault_hook is not None:
            self.fault_hook(transaction)
        if security_layer is not None:
            security_layer.after_transfer(transaction)
        return transaction

    # -- statistics ----------------------------------------------------------

    def _flush_stats(self) -> None:
        """Drain pending traffic counts into the registry."""
        add = self.stats.add
        if self._pending_transactions:
            add("bus.transactions", self._pending_transactions)
            self._pending_transactions = 0
        if self._pending_by_type:
            for name, count in self._pending_by_type.items():
                add(name, count)
            self._pending_by_type.clear()
        if self._pending_c2c:
            add("bus.cache_to_cache", self._pending_c2c)
            self._pending_c2c = 0
        if self._pending_with_memory:
            add("bus.with_memory", self._pending_with_memory)
            self._pending_with_memory = 0

    @property
    def total_transactions(self) -> int:
        return self.stats.get("bus.transactions")

    @property
    def cache_to_cache_transfers(self) -> int:
        return self.stats.get("bus.cache_to_cache")

    def reset(self) -> None:
        self._free_at = 0
        self._data_free_at = 0
        self._sequence = 0
