"""CHash [7]: hash-tree verification with L2 caching of tree nodes.

The key performance idea of Gassend et al.: a tree node that resides
in the (trusted, on-chip) L2 cache needs no further verification —
"Once a node resides in L2, it is considered to be secure". A
verification walk therefore climbs only until it hits a cached node or
the on-chip root.

:class:`CachedHashTreeVerifier` wraps the functional
:class:`~repro.memprotect.merkle.MerkleTree` with a node cache and
reports how many node *fetches* (the quantity that becomes bus traffic
and L2 pollution) each operation cost — the statistics behind
Figure 10's 12% slowdown / 58% traffic numbers.

The climb works directly on the tree's flat digest list (DESIGN.md
§6e): cache keys are flat node positions (one int, not a (level,
index) tuple), and child groups are gathered by slice arithmetic.

Statistics follow the repo-wide flush-on-read contract: the running
totals (``node_fetches``, ``cache_hits``, ``verifications``,
``evictions``) are plain attributes bumped on the hot path; when a
:class:`~repro.sim.stats.StatsRegistry` is attached, a registered
flusher materializes them under the ``chash.*`` namespace on any
registry read. Evictions land in that one namespace no matter where
they happen — capacity pressure inside ``verified_read``/
``verified_write``, an explicit ``evict_node``, or a ``flush_cache``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..errors import ConfigError, IntegrityViolation
from ..sim.stats import StatsRegistry
from .merkle import MerkleTree


class CachedHashTreeVerifier:
    """A Merkle tree fronted by an LRU cache of trusted nodes.

    Cache keys are flat node positions; the root is implicitly always
    trusted (held in an on-chip register).
    """

    def __init__(self, tree: MerkleTree, cache_nodes: int = 256,
                 stats: Optional[StatsRegistry] = None):
        if cache_nodes < 1:
            raise ConfigError("node cache must hold at least one node")
        self.tree = tree
        self.cache_nodes = cache_nodes
        # Flat position -> True, in LRU order (oldest first); int keys
        # hash faster than the old (level, index) tuples.
        self._cache: "OrderedDict[int, bool]" = OrderedDict()
        self.node_fetches = 0
        self.cache_hits = 0
        self.verifications = 0
        self.evictions = 0
        # Registry snapshot of each counter at the last flush: the
        # flusher adds only the delta, so the attributes stay plain
        # running totals for direct readers.
        self._flushed = (0, 0, 0, 0)
        self.stats = stats
        if stats is not None:
            stats.register_flusher(self._flush_stats)

    def _flush_stats(self) -> None:
        fetched, hits, verifs, evicts = self._flushed
        add = self.stats.add
        if self.node_fetches != fetched:
            add("chash.node_fetches", self.node_fetches - fetched)
        if self.cache_hits != hits:
            add("chash.cache_hits", self.cache_hits - hits)
        if self.verifications != verifs:
            add("chash.verifications", self.verifications - verifs)
        if self.evictions != evicts:
            add("chash.evictions", self.evictions - evicts)
        self._flushed = (self.node_fetches, self.cache_hits,
                         self.verifications, self.evictions)

    # -- cache plumbing -----------------------------------------------------

    def _is_cached(self, level: int, index: int) -> bool:
        pos = self.tree._offsets[level] + index
        if pos in self._cache:
            self._cache.move_to_end(pos)
            return True
        return False

    def _install(self, level: int, index: int) -> None:
        self._install_pos(self.tree._offsets[level] + index)

    def _install_pos(self, pos: int) -> None:
        cache = self._cache
        cache[pos] = True
        cache.move_to_end(pos)
        if len(cache) > self.cache_nodes:
            cache.popitem(last=False)
            self.evictions += 1

    def evict_node(self, level: int, index: int) -> None:
        """Model L2 pressure evicting a tree node (tests use this)."""
        pos = self.tree._offsets[level] + index
        if self._cache.pop(pos, None) is not None:
            self.evictions += 1

    def flush_cache(self) -> None:
        self.evictions += len(self._cache)
        self._cache.clear()

    # -- verified operations ---------------------------------------------------

    def verified_read(self, address: int) -> Tuple[bytes, int]:
        """Read a line, verifying up to the first trusted node.

        Returns (plaintext-as-stored, node fetches incurred). Raises
        :class:`IntegrityViolation` on any mismatch along the climb.
        """
        self.verifications += 1
        tree = self.tree
        index = tree._line_index(address)
        digest = tree._leaf_digest(index)
        fetches = 0
        level = 0
        height = len(tree._counts) - 1
        offsets = tree._offsets
        counts = tree._counts
        nodes = tree._nodes
        dirty = tree._dirty
        arity = tree.arity
        cache = self._cache
        while True:
            pos = offsets[level] + index
            if dirty[pos]:
                tree._recompute(level, index)
            if digest != nodes[pos]:
                raise IntegrityViolation(
                    f"digest mismatch at level {level} verifying "
                    f"{address:#x}")
            if level == height:
                break  # reached the on-chip root: fully verified
            if pos in cache:
                cache.move_to_end(pos)
                self.cache_hits += 1
                break  # trusted ancestor already on chip
            # Fetch this node's parent from memory and keep climbing.
            self._install_pos(pos)
            fetches += 1
            parent_index = index // arity
            begin = parent_index * arity
            end = min(begin + arity, counts[level])
            child_off = offsets[level]
            if level >= 1:
                for child in range(begin, end):
                    if dirty[child_off + child]:
                        tree._recompute(level, child)
            digest = tree._node_digest(
                b"".join(nodes[child_off + begin:child_off + end]))
            level += 1
            index = parent_index
        self.node_fetches += fetches
        return tree.memory.read_line(address), fetches

    def verified_write(self, address: int, data: bytes) -> int:
        """Write a line and update the hash chain; returns fetches."""
        _, fetches = self.verified_read(address)  # authenticate first
        self.tree.memory.write_line(address, data)
        self.tree.update_line(address)
        return fetches
