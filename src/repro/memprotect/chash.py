"""CHash [7]: hash-tree verification with L2 caching of tree nodes.

The key performance idea of Gassend et al.: a tree node that resides
in the (trusted, on-chip) L2 cache needs no further verification —
"Once a node resides in L2, it is considered to be secure". A
verification walk therefore climbs only until it hits a cached node or
the on-chip root.

:class:`CachedHashTreeVerifier` wraps the functional
:class:`~repro.memprotect.merkle.MerkleTree` with a node cache and
reports how many node *fetches* (the quantity that becomes bus traffic
and L2 pollution) each operation cost — the statistics behind
Figure 10's 12% slowdown / 58% traffic numbers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from ..crypto.hashes import hash_node
from ..errors import ConfigError, IntegrityViolation
from .merkle import MerkleTree


class CachedHashTreeVerifier:
    """A Merkle tree fronted by an LRU cache of trusted nodes.

    Cache keys are (level, node_index); the root is implicitly always
    trusted (held in an on-chip register).
    """

    def __init__(self, tree: MerkleTree, cache_nodes: int = 256):
        if cache_nodes < 1:
            raise ConfigError("node cache must hold at least one node")
        self.tree = tree
        self.cache_nodes = cache_nodes
        self._cache: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.node_fetches = 0
        self.cache_hits = 0
        self.verifications = 0

    # -- cache plumbing -----------------------------------------------------

    def _is_cached(self, level: int, index: int) -> bool:
        key = (level, index)
        if key in self._cache:
            self._cache.move_to_end(key)
            return True
        return False

    def _install(self, level: int, index: int) -> None:
        self._cache[(level, index)] = True
        self._cache.move_to_end((level, index))
        if len(self._cache) > self.cache_nodes:
            self._cache.popitem(last=False)

    def evict_node(self, level: int, index: int) -> None:
        """Model L2 pressure evicting a tree node (tests use this)."""
        self._cache.pop((level, index), None)

    def flush_cache(self) -> None:
        self._cache.clear()

    # -- verified operations ---------------------------------------------------

    def verified_read(self, address: int) -> Tuple[bytes, int]:
        """Read a line, verifying up to the first trusted node.

        Returns (plaintext-as-stored, node fetches incurred). Raises
        :class:`IntegrityViolation` on any mismatch along the climb.
        """
        self.verifications += 1
        index = self.tree._line_index(address)
        digest = self.tree._leaf_digest(index)
        fetches = 0
        level = 0
        while True:
            if digest != self.tree.levels[level][index]:
                raise IntegrityViolation(
                    f"digest mismatch at level {level} verifying "
                    f"{address:#x}")
            if level == self.tree.height:
                break  # reached the on-chip root: fully verified
            if self._is_cached(level, index):
                self.cache_hits += 1
                break  # trusted ancestor already on chip
            # Fetch this node's parent from memory and keep climbing.
            self._install(level, index)
            fetches += 1
            parent_index = index // self.tree.arity
            begin = parent_index * self.tree.arity
            children = self.tree.levels[level][begin:begin
                                               + self.tree.arity]
            digest = hash_node(children)
            level += 1
            index = parent_index
        self.node_fetches += fetches
        return self.tree.memory.read_line(address), fetches

    def verified_write(self, address: int, data: bytes) -> int:
        """Write a line and update the hash chain; returns fetches."""
        _, fetches = self.verified_read(address)  # authenticate first
        self.tree.memory.write_line(address, data)
        self.tree.update_line(address)
        return fetches
