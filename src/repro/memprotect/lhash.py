"""LHash-style lazy memory verification (Suh et al. [25]).

Instead of verifying every memory access against the tree, cluster a
sequence of accesses and check them together: keep two multiset hashes
in trusted on-chip storage — one absorbing every (address, version,
data) the processor WROTE to memory, one absorbing every triple it
READ — and at verification time read back the outstanding lines so the
two multisets must match. Any tampering between a write and the
read-back perturbs the READ multiset and the epoch check fails. The
paper cites LHash's ~5% overhead vs CHash's ~25% as the reason it
"will also be very effective in SENSS" (section 7.7).
"""

from __future__ import annotations

from typing import Dict

from ..crypto.hashes import MultisetHash
from ..errors import IntegrityViolation, ReproError
from ..memory.dram import MainMemory


class LazyVerifier:
    """One trusted domain's lazy verification state."""

    def __init__(self, memory: MainMemory):
        self.memory = memory
        self._write_set = MultisetHash()
        self._read_set = MultisetHash()
        # version per line within the current epoch
        self._versions: Dict[int, int] = {}
        self.epochs_verified = 0

    # -- the per-access fast path ------------------------------------------

    def write_line(self, address: int, data: bytes) -> None:
        """Processor evicts a line to memory: log it in the WRITE set."""
        version = self._versions.get(address, 0) + 1
        self._versions[address] = version
        self.memory.write_line(address, data)
        self._write_set.add(address, version, data)

    def read_line(self, address: int) -> bytes:
        """Processor fetches a line: log what was actually read.

        Reading consumes the line's current version and immediately
        re-logs the value as a fresh write (the line remains live in
        memory), mirroring LHash's read-pairs-with-write discipline.
        """
        if address not in self._versions:
            raise ReproError(
                f"line {address:#x} was never written in this epoch")
        data = self.memory.read_line(address)
        version = self._versions[address]
        self._read_set.add(address, version, data)
        version += 1
        self._versions[address] = version
        self._write_set.add(address, version, data)
        return data

    # -- the deferred check ---------------------------------------------------

    def verify_epoch(self) -> None:
        """Read back all live lines and compare the multisets.

        On a clean history READ == WRITE afterwards; any corruption of
        memory between a write and its read-back breaks the equality.
        Raises :class:`IntegrityViolation` on mismatch and resets state
        either way (a new epoch starts).
        """
        for address, version in list(self._versions.items()):
            data = self.memory.read_line(address)
            self._read_set.add(address, version, data)
        matched = self._read_set.matches(self._write_set)
        self._write_set = MultisetHash()
        self._read_set = MultisetHash()
        self._versions.clear()
        if not matched:
            raise IntegrityViolation(
                "lazy verification failed: read/write multisets differ")
        self.epochs_verified += 1

    @property
    def outstanding_lines(self) -> int:
        return len(self._versions)
