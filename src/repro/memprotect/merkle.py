"""The memory integrity hash tree (section 2.2).

Leaves are hashes of memory lines (bound to their addresses), internal
nodes are hashes of their children, and the root is "the unique
signature of the entire memory", stored on-chip where only the
processor can update it. Any corruption of memory — including a replay
of an old (block, hash) pair, which defeats flat per-block MACs — makes
some recomputed node disagree with its parent.

This is the *functional* tree used by tests and examples over a
bounded address span; the timing behaviour (which node fetches hit the
L2, etc.) is modeled separately in :mod:`repro.memprotect.integrated`.
"""

from __future__ import annotations

from typing import List

from ..crypto.hashes import hash_leaf, hash_node
from ..errors import ConfigError, IntegrityViolation
from ..memory.dram import MainMemory


class MerkleTree:
    """Hash tree over ``num_lines`` lines starting at ``base_address``."""

    def __init__(self, memory: MainMemory, base_address: int,
                 num_lines: int, arity: int = 4):
        if num_lines < 1:
            raise ConfigError("tree must cover at least one line")
        if arity < 2:
            raise ConfigError("tree arity must be >= 2")
        if base_address % memory.line_bytes != 0:
            raise ConfigError("base address must be line-aligned")
        self.memory = memory
        self.base_address = base_address
        self.num_lines = num_lines
        self.arity = arity
        # levels[0] = leaf digests; levels[-1] = [root]
        self.levels: List[List[bytes]] = []
        self.rebuild()

    # -- construction ------------------------------------------------------

    def _leaf_digest(self, index: int) -> bytes:
        address = self.base_address + index * self.memory.line_bytes
        return hash_leaf(address, self.memory.read_line(address))

    def rebuild(self) -> None:
        """Recompute the whole tree from memory contents."""
        current = [self._leaf_digest(index)
                   for index in range(self.num_lines)]
        self.levels = [current]
        while len(current) > 1:
            parents = []
            for begin in range(0, len(current), self.arity):
                parents.append(hash_node(current[begin:begin
                                                 + self.arity]))
            current = parents
            self.levels.append(current)

    @property
    def root(self) -> bytes:
        """The on-chip root signature."""
        return self.levels[-1][0]

    @property
    def height(self) -> int:
        """Number of levels above the leaves."""
        return len(self.levels) - 1

    # -- index helpers --------------------------------------------------------

    def _line_index(self, address: int) -> int:
        index = (address - self.base_address) // self.memory.line_bytes
        if not 0 <= index < self.num_lines:
            raise ConfigError(f"address {address:#x} outside the tree")
        return index

    # -- updates (legitimate writes) ----------------------------------------

    def update_line(self, address: int) -> int:
        """Re-hash after a legitimate write; returns nodes touched."""
        index = self._line_index(address)
        self.levels[0][index] = self._leaf_digest(index)
        touched = 1
        for level in range(1, len(self.levels)):
            index //= self.arity
            begin = index * self.arity
            children = self.levels[level - 1][begin:begin + self.arity]
            self.levels[level][index] = hash_node(children)
            touched += 1
        return touched

    # -- verification ------------------------------------------------------

    def verify_line(self, address: int) -> None:
        """Check one line against the chain up to the root.

        Raises :class:`IntegrityViolation` naming the level where the
        recomputed digest disagrees with the stored one. A *legitimate*
        state passes; any ``memory.corrupt_line`` (or a stored-digest
        replay) fails.
        """
        index = self._line_index(address)
        digest = self._leaf_digest(index)
        if digest != self.levels[0][index]:
            raise IntegrityViolation(
                f"leaf digest mismatch for line {address:#x}")
        for level in range(1, len(self.levels)):
            parent_index = index // self.arity
            begin = parent_index * self.arity
            children = self.levels[level - 1][begin:begin + self.arity]
            recomputed = hash_node(children)
            if recomputed != self.levels[level][parent_index]:
                raise IntegrityViolation(
                    f"node digest mismatch at level {level} for line "
                    f"{address:#x}")
            index = parent_index

    def verify_all(self) -> None:
        for index in range(self.num_lines):
            self.verify_line(self.base_address
                             + index * self.memory.line_bytes)

    # -- adversarial helpers (tests) -------------------------------------------

    def forge_leaf_digest(self, address: int, digest: bytes) -> None:
        """Overwrite a stored leaf digest (models tampering with the
        in-memory part of the tree); the parent check must catch it."""
        self.levels[0][self._line_index(address)] = digest
