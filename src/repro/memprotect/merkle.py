"""The memory integrity hash tree (section 2.2).

Leaves are hashes of memory lines (bound to their addresses), internal
nodes are hashes of their children, and the root is "the unique
signature of the entire memory", stored on-chip where only the
processor can update it. Any corruption of memory — including a replay
of an old (block, hash) pair, which defeats flat per-block MACs — makes
some recomputed node disagree with its parent.

This is the *functional* tree used by tests and examples over a
bounded address span; the timing behaviour (which node fetches hit the
L2, etc.) is modeled separately in :mod:`repro.memprotect.integrated`.

Storage layout (DESIGN.md §6e): the tree is one flat digest list.
Level ``k`` occupies ``_offsets[k] .. _offsets[k] + _counts[k]``, so a
node is addressed by pure index arithmetic — no per-level list
chasing, and the (level, index) -> flat-position map is one add.
Two throughput mechanisms sit on top:

- **Digest memoization**: leaf and node digests are remembered keyed
  by their exact input bytes, so re-hashing an unchanged line (the
  dominant verify-climb case) is one dict probe instead of an MMO/AES
  run. The memo is capacity-bounded and self-clearing.
- **Dirty-node batching**: ``update_leaf`` refreshes the leaf digest
  eagerly but only *marks* interior ancestors dirty; they are
  recomputed once — on the next read through ``node``/``root``/a
  verify climb, or in one bottom-up ``flush`` — so a burst of
  write-backs hashes each interior node once instead of once per
  write. ``update_line`` keeps the original eager spec.
"""

from __future__ import annotations

from typing import List

from ..crypto.hashes import hash_leaf, hash_node
from ..errors import ConfigError, IntegrityViolation
from ..memory.dram import MainMemory


class _LevelView:
    """Read/write view of one tree level over the flat digest list.

    Preserves the historical ``tree.levels[level][index]`` API: reads
    see *clean* digests (lazily recomputing batched updates), writes
    store raw bytes without touching ancestors (the forgery semantics
    tests rely on).
    """

    __slots__ = ("_tree", "_level")

    def __init__(self, tree: "MerkleTree", level: int):
        self._tree = tree
        self._level = level

    def __len__(self) -> int:
        return self._tree._counts[self._level]

    def __getitem__(self, index):
        tree, level = self._tree, self._level
        count = tree._counts[level]
        if isinstance(index, slice):
            return [tree.node(level, i)
                    for i in range(*index.indices(count))]
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(index)
        return tree.node(level, index)

    def __setitem__(self, index, digest: bytes) -> None:
        tree, level = self._tree, self._level
        count = tree._counts[level]
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(index)
        tree._nodes[tree._offsets[level] + index] = digest
        tree._dirty[tree._offsets[level] + index] = 0

    def __iter__(self):
        tree, level = self._tree, self._level
        return (tree.node(level, i)
                for i in range(tree._counts[level]))


class _LevelsView:
    """``tree.levels`` — indexable list-of-levels facade."""

    __slots__ = ("_tree",)

    def __init__(self, tree: "MerkleTree"):
        self._tree = tree

    def __len__(self) -> int:
        return len(self._tree._counts)

    def __getitem__(self, level):
        num_levels = len(self._tree._counts)
        if isinstance(level, slice):
            return [_LevelView(self._tree, i)
                    for i in range(*level.indices(num_levels))]
        if level < 0:
            level += num_levels
        if not 0 <= level < num_levels:
            raise IndexError(level)
        return _LevelView(self._tree, level)

    def __iter__(self):
        return (_LevelView(self._tree, level)
                for level in range(len(self._tree._counts)))


class MerkleTree:
    """Hash tree over ``num_lines`` lines starting at ``base_address``."""

    def __init__(self, memory: MainMemory, base_address: int,
                 num_lines: int, arity: int = 4):
        if num_lines < 1:
            raise ConfigError("tree must cover at least one line")
        if arity < 2:
            raise ConfigError("tree arity must be >= 2")
        if base_address % memory.line_bytes != 0:
            raise ConfigError("base address must be line-aligned")
        self.memory = memory
        self.base_address = base_address
        self.num_lines = num_lines
        self.arity = arity
        self._line_bytes = memory.line_bytes
        # Flat geometry: nodes per level and the starting flat
        # position of each level. _counts[0] = leaves, _counts[-1] = 1.
        counts = [num_lines]
        while counts[-1] > 1:
            counts.append(-(-counts[-1] // arity))
        self._counts = counts
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        self._total = offsets.pop()
        self._offsets = offsets
        self._nodes: List[bytes] = [b""] * self._total
        # Interior dirty flags (leaves are always eagerly up to date).
        self._dirty = bytearray(self._total)
        # Digest memos, keyed by exact hash input. Bounded: cleared
        # wholesale when they outgrow the working set (rebuilds repay
        # the loss in one pass).
        self._leaf_memo = {}
        self._node_memo = {}
        self._memo_cap = max(1024, 4 * self._total)
        self.rebuild()

    # -- digest engine -----------------------------------------------------

    def _leaf_digest(self, index: int) -> bytes:
        address = self.base_address + index * self._line_bytes
        data = self.memory.read_line(address)
        memo = self._leaf_memo
        digest = memo.get((address, data))
        if digest is None:
            digest = hash_leaf(address, data)
            if len(memo) >= self._memo_cap:
                memo.clear()
            memo[(address, data)] = digest
        return digest

    def _node_digest(self, children: bytes) -> bytes:
        """``hash_node`` memoized on the concatenated child digests."""
        memo = self._node_memo
        digest = memo.get(children)
        if digest is None:
            digest = hash_node((children,))
            if len(memo) >= self._memo_cap:
                memo.clear()
            memo[children] = digest
        return digest

    # -- construction ------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute the whole tree from memory contents."""
        nodes = self._nodes
        counts = self._counts
        offsets = self._offsets
        arity = self.arity
        for index in range(counts[0]):
            nodes[index] = self._leaf_digest(index)
        for level in range(1, len(counts)):
            child_off = offsets[level - 1]
            child_end = child_off + counts[level - 1]
            parent_off = offsets[level]
            for index in range(counts[level]):
                begin = child_off + index * arity
                nodes[parent_off + index] = self._node_digest(
                    b"".join(nodes[begin:min(begin + arity, child_end)]))
        self._dirty = bytearray(self._total)

    @property
    def levels(self) -> _LevelsView:
        """levels[0] = leaf digests; levels[-1] = [root]."""
        return _LevelsView(self)

    @property
    def root(self) -> bytes:
        """The on-chip root signature."""
        return self.node(len(self._counts) - 1, 0)

    @property
    def height(self) -> int:
        """Number of levels above the leaves."""
        return len(self._counts) - 1

    @property
    def dirty_nodes(self) -> int:
        """Interior nodes with a batched (not yet hashed) update."""
        return sum(self._dirty)

    # -- index helpers --------------------------------------------------------

    def _line_index(self, address: int) -> int:
        index = (address - self.base_address) // self._line_bytes
        if not 0 <= index < self.num_lines:
            raise ConfigError(f"address {address:#x} outside the tree")
        return index

    # -- node access (lazily cleaning batched updates) ---------------------

    def node(self, level: int, index: int) -> bytes:
        """The stored digest of one node, recomputed first if a
        batched ``update_leaf`` left it dirty."""
        pos = self._offsets[level] + index
        if self._dirty[pos]:
            self._recompute(level, index)
        return self._nodes[pos]

    def _recompute(self, level: int, index: int) -> None:
        """Hash one interior node from its (first cleaned) children."""
        counts = self._counts
        offsets = self._offsets
        arity = self.arity
        begin = index * arity
        end = min(begin + arity, counts[level - 1])
        child_off = offsets[level - 1]
        if level >= 2:  # leaves are never dirty
            dirty = self._dirty
            for child in range(begin, end):
                if dirty[child_off + child]:
                    self._recompute(level - 1, child)
        nodes = self._nodes
        pos = offsets[level] + index
        nodes[pos] = self._node_digest(
            b"".join(nodes[child_off + begin:child_off + end]))
        self._dirty[pos] = 0

    # -- updates (legitimate writes) ----------------------------------------

    def update_line(self, address: int) -> int:
        """Re-hash after a legitimate write; returns nodes touched.

        The eager spec: the whole leaf-to-root path is recomputed now
        (batched siblings' pending updates are folded in along the
        way), exactly ``height + 1`` nodes.
        """
        index = self._line_index(address)
        self._nodes[index] = self._leaf_digest(index)
        counts = self._counts
        arity = self.arity
        for level in range(1, len(counts)):
            index //= arity
            self._recompute(level, index)
        return len(counts)

    def update_leaf(self, address: int) -> None:
        """Batched update: refresh the leaf digest now, defer the
        interior path. Ancestors are only *marked*; the next read
        through ``node``/``root``/a verify climb — or one ``flush`` —
        recomputes each of them once, however many leaves changed
        under them in the meantime.
        """
        index = self._line_index(address)
        self._nodes[index] = self._leaf_digest(index)
        counts = self._counts
        offsets = self._offsets
        dirty = self._dirty
        arity = self.arity
        for level in range(1, len(counts)):
            index //= arity
            pos = offsets[level] + index
            if dirty[pos]:
                return  # ancestors above are already marked
            dirty[pos] = 1

    def flush(self) -> int:
        """Recompute all batched updates bottom-up; returns how many
        interior nodes were hashed (each dirty node exactly once)."""
        recomputed = 0
        counts = self._counts
        offsets = self._offsets
        dirty = self._dirty
        nodes = self._nodes
        arity = self.arity
        for level in range(1, len(counts)):
            child_off = offsets[level - 1]
            child_end = child_off + counts[level - 1]
            level_off = offsets[level]
            for index in range(counts[level]):
                if dirty[level_off + index]:
                    begin = child_off + index * arity
                    nodes[level_off + index] = self._node_digest(
                        b"".join(nodes[begin:min(begin + arity,
                                                 child_end)]))
                    dirty[level_off + index] = 0
                    recomputed += 1
        return recomputed

    # -- verification ------------------------------------------------------

    def verify_line(self, address: int) -> None:
        """Check one line against the chain up to the root.

        Raises :class:`IntegrityViolation` naming the level where the
        recomputed digest disagrees with the stored one. A *legitimate*
        state passes; any ``memory.corrupt_line`` (or a stored-digest
        replay) fails.
        """
        index = self._line_index(address)
        digest = self._leaf_digest(index)
        if digest != self._nodes[index]:
            raise IntegrityViolation(
                f"leaf digest mismatch for line {address:#x}")
        counts = self._counts
        offsets = self._offsets
        nodes = self._nodes
        arity = self.arity
        for level in range(1, len(counts)):
            parent_index = index // arity
            begin = parent_index * arity
            end = min(begin + arity, counts[level - 1])
            child_off = offsets[level - 1]
            if level >= 2:
                dirty = self._dirty
                for child in range(begin, end):
                    if dirty[child_off + child]:
                        self._recompute(level - 1, child)
            recomputed = self._node_digest(
                b"".join(nodes[child_off + begin:child_off + end]))
            if recomputed != self.node(level, parent_index):
                raise IntegrityViolation(
                    f"node digest mismatch at level {level} for line "
                    f"{address:#x}")
            index = parent_index

    def verify_all(self) -> None:
        for index in range(self.num_lines):
            self.verify_line(self.base_address
                             + index * self._line_bytes)

    # -- adversarial helpers (tests) -------------------------------------------

    def forge_leaf_digest(self, address: int, digest: bytes) -> None:
        """Overwrite a stored leaf digest (models tampering with the
        in-memory part of the tree); the parent check must catch it."""
        self._nodes[self._line_index(address)] = digest
