"""The cache-to-memory protection timing layer (section 6, Figure 10).

``MemProtectLayer`` attaches to an :class:`~repro.smp.system.SmpSystem`
and is consulted on every memory-supplied line fetch and every dirty
write-back. It models the two section-6 mechanisms and their SMP
coherence obligations:

**Fast memory encryption** (section 6.1). Pads are generated in
parallel with the memory access, so decryption adds one XOR cycle; the
SMP cost is pad *coherence*: a write-back bumps the line's pad
sequence, sending a type-"01" pad-invalidate (write-invalidate
protocol) and forcing later readers on other processors to issue a
type-"10" pad request — extra bus transactions, not extra stalls
(the pad request overlaps the 180-cycle line fetch).

**Hash-tree integrity** (section 6.2, CHash [7]). Tree nodes live at
synthetic addresses and are cached *in the regular L2* — which is
exactly how the paper gets its L2 pollution. Verifying a fetched line
climbs to the nearest L2-resident ancestor, issuing real coherence
transactions (so node fetches can themselves be supplied
cache-to-cache, ride the SENSS masks, pollute the L2 and evict dirty
victims). Updating after a write-back *writes* the parent node, whose
own eventual eviction propagates the update to the grandparent — the
cascading procedure of section 6.2. Under ``lazy_verification``
(LHash-style ablation) the tree machinery is bypassed for a
throughput-bound multiset-hash update.
"""

from __future__ import annotations

from ..bus.transaction import BusTransaction, TransactionType
from ..cache.mesi import MesiState
from ..config import SystemConfig
from ..crypto.engine import CryptoEngineModel
from ..errors import SimulationError
from .pad_cache import PadCache, PadCoherenceDirectory

# Synthetic address region for hash-tree nodes: far above any workload
# data, one stride per tree level so node lines never collide with data
# lines or each other.
HASH_BASE = 1 << 44
LEVEL_STRIDE = 1 << 38
DATA_SPAN = 1 << 36  # covered data address space

_PAD_REQUEST = TransactionType.PAD_REQUEST
_PAD_INVALIDATE = TransactionType.PAD_INVALIDATE
_INVALID = MesiState.INVALID
_MODIFIED = MesiState.MODIFIED
_SHARED = MesiState.SHARED
_UNSET = object()  # parent-table sentinel (None is a valid parent)


class MemProtectLayer:
    """Memory encryption + integrity timing hooks for the simulator."""

    def __init__(self, config: SystemConfig):
        memprotect = config.memprotect
        if not (memprotect.encryption_enabled
                or memprotect.integrity_enabled):
            raise SimulationError(
                "MemProtectLayer requires at least one mechanism enabled")
        self.config = config
        self.encryption = memprotect.encryption_enabled
        self.integrity = memprotect.integrity_enabled
        self.lazy = memprotect.lazy_verification
        self.direct_encryption = memprotect.encryption_mode == "direct"
        self.line_bytes = config.l2.line_bytes
        self.arity = max(2, self.line_bytes // 16)  # digests per node line
        self.directory = PadCoherenceDirectory(config.num_processors,
                                               memprotect.pad_protocol)
        self._pad_invalidate_protocol = (
            memprotect.pad_protocol == "write-invalidate")
        # Per-processor sequence-number/pad caches (section 7.7: the
        # experiments use a perfect SNC; pad_cache_entries=None keeps
        # that default, a finite size models the real structure).
        self.pad_caches = [PadCache(memprotect.pad_cache_entries)
                           for _ in range(config.num_processors)]
        self.aes_engine = CryptoEngineModel.aes_from_config(
            config.crypto, config.cpu_ghz)
        self.hash_engine = CryptoEngineModel.hash_from_config(
            config.crypto, config.cpu_ghz, self.line_bytes)
        self.system = None
        # Optional observability probe (repro.obs.Tracer): notified of
        # pad-cache lookups and hash-tree verifies/updates.
        self.observer = None
        # Optional fault-injection probe (repro.faults.FaultInjector):
        # consulted on pad-cache consultations, pad write-back
        # refreshes, and hash-tree verifies. May return extra
        # critical-path cycles (a detected fault's recovery penalty).
        self.fault_hook = None
        self._writeback_depth = 0
        self._max_writeback_depth = 8
        # Memoized parent-node addresses: every verify climb and every
        # hash update starts with the same classify/parent arithmetic
        # for a working set of line addresses, so the result is
        # remembered per address (None = parent is on-chip).
        self._parent_table = {}
        # Levels whose node count is small enough to pin on chip; the
        # root always is. leaves = DATA_SPAN / line_bytes.
        leaves = DATA_SPAN // self.line_bytes
        level, nodes = 0, leaves
        while nodes > 16:
            nodes = -(-nodes // self.arity)
            level += 1
        self.internal_level = level
        # Deferred stats (drained into the system registry on read).
        # ``direct_decrypt_stalls`` tracks events separately from the
        # stalled-cycle amount: the reference semantics materialize the
        # counter even on a zero-cycle stall.
        self._p_pad_requests = 0
        self._p_direct_stall_cycles = 0
        self._p_direct_stall_events = 0
        self._p_decryptions = 0
        self._p_pad_cache_misses = 0
        self._p_pad_cache_hits = 0
        self._p_lazy_hash_updates = 0
        self._p_root_verifications = 0
        self._p_node_cache_hits = 0
        self._p_hash_fetches = 0
        self._p_encryptions = 0
        self._p_pad_invalidates = 0
        self._p_pad_updates = 0
        self._p_root_updates = 0
        self._p_clipped_updates = 0
        self._p_hash_updates = 0

    # -- attachment -----------------------------------------------------------

    def attach(self, system) -> None:
        self.system = system
        system.attach_memprotect(self)
        system.stats.register_flusher(self._flush_stats)

    def _flush_stats(self) -> None:
        add = self.system.stats.add
        if self._p_pad_requests:
            add("memprotect.pad_requests", self._p_pad_requests)
            self._p_pad_requests = 0
        if self._p_direct_stall_events:
            add("memprotect.direct_decrypt_stalls",
                self._p_direct_stall_cycles)
            self._p_direct_stall_cycles = 0
            self._p_direct_stall_events = 0
        if self._p_decryptions:
            add("memprotect.decryptions", self._p_decryptions)
            self._p_decryptions = 0
        if self._p_pad_cache_misses:
            add("memprotect.pad_cache_misses", self._p_pad_cache_misses)
            self._p_pad_cache_misses = 0
        if self._p_pad_cache_hits:
            add("memprotect.pad_cache_hits", self._p_pad_cache_hits)
            self._p_pad_cache_hits = 0
        if self._p_lazy_hash_updates:
            add("memprotect.lazy_hash_updates", self._p_lazy_hash_updates)
            self._p_lazy_hash_updates = 0
        if self._p_root_verifications:
            add("memprotect.root_verifications",
                self._p_root_verifications)
            self._p_root_verifications = 0
        if self._p_node_cache_hits:
            add("memprotect.node_cache_hits", self._p_node_cache_hits)
            self._p_node_cache_hits = 0
        if self._p_hash_fetches:
            add("memprotect.hash_fetches", self._p_hash_fetches)
            self._p_hash_fetches = 0
        if self._p_encryptions:
            add("memprotect.encryptions", self._p_encryptions)
            self._p_encryptions = 0
        if self._p_pad_invalidates:
            add("memprotect.pad_invalidates", self._p_pad_invalidates)
            self._p_pad_invalidates = 0
        if self._p_pad_updates:
            add("memprotect.pad_updates", self._p_pad_updates)
            self._p_pad_updates = 0
        if self._p_root_updates:
            add("memprotect.root_updates", self._p_root_updates)
            self._p_root_updates = 0
        if self._p_clipped_updates:
            add("memprotect.clipped_updates", self._p_clipped_updates)
            self._p_clipped_updates = 0
        if self._p_hash_updates:
            add("memprotect.hash_updates", self._p_hash_updates)
            self._p_hash_updates = 0

    # -- tree geometry -----------------------------------------------------------

    def node_address(self, level: int, index: int) -> int:
        return (HASH_BASE + level * LEVEL_STRIDE
                + index * self.line_bytes)

    def classify(self, address: int):
        """Return (level, index): level 0 = data line."""
        if address < HASH_BASE:
            return 0, address // self.line_bytes
        offset = address - HASH_BASE
        level = offset // LEVEL_STRIDE  # node_address stores level >= 1
        index = (offset % LEVEL_STRIDE) // self.line_bytes
        return level, index

    def parent_of(self, address: int):
        """Parent node address, or None when the parent is on-chip."""
        parent = self._parent_table.get(address, _UNSET)
        if parent is _UNSET:
            level, index = self.classify(address)
            parent_level = level + 1
            if parent_level > self.internal_level:
                parent = None
            else:
                parent = self.node_address(parent_level,
                                           index // self.arity)
            self._parent_table[address] = parent
        return parent

    # -- simulator callbacks -------------------------------------------------

    def on_memory_fetch(self, cpu: int, line_address: int,
                        clock: int) -> int:
        """A line arrived from memory; returns extra critical-path cycles."""
        system = self.system
        if system is None:
            raise SimulationError("layer not attached to a system")
        extra = 0
        if self.encryption:
            if self.directory.on_fetch(cpu, line_address):
                # Type-"10" pad request; overlaps the line fetch
                # itself, so it costs bus occupancy/traffic, not stall.
                # Pad messages carry no group tag (group_id 0) and are
                # safe to put on the system's scratch transaction: the
                # enclosing miss has already read its completion cycle.
                transaction = system._next_transaction(
                    _PAD_REQUEST, line_address, cpu, 0, False)
                system.bus.issue(transaction, clock, data_bytes=16)
                self._p_pad_requests += 1
            if self.direct_encryption:
                # Naive baseline: the line cannot be used until the
                # serial AES decryption finishes (section 2.1's ~17%
                # regime). Charged per AES block in the line.
                blocks = self.line_bytes // 16
                ready = clock
                for _ in range(blocks):
                    # Pipelined unit: blocks issue back-to-back at the
                    # issue interval; the line is usable when the last
                    # block's decryption completes.
                    ready = max(ready, self.aes_engine.issue(clock))
                extra += ready - clock
                self._p_direct_stall_cycles += ready - clock
                self._p_direct_stall_events += 1
                self._p_decryptions += 1
                if self.integrity:
                    extra += (self._verify_climb(cpu, line_address,
                                                 clock)
                              if not self.lazy else 0)
                return extra
            pad_cache = self.pad_caches[cpu]
            if pad_cache.lookup(line_address) is None:
                # SNC miss: the pad must be regenerated. Generation
                # overlaps the 180-cycle line fetch (the whole point of
                # pad-based encryption), so only AES queueing shows up
                # on the critical path; a hit skips even that.
                aes_engine = self.aes_engine
                ready = aes_engine.issue(clock)
                extra += max(0, ready - clock - aes_engine.latency)
                pad_cache.install(line_address, 0)
                self._p_pad_cache_misses += 1
                if self.observer is not None:
                    self.observer.on_pad_cache(cpu, line_address, clock,
                                               False)
                hit = False
            else:
                self._p_pad_cache_hits += 1
                if self.observer is not None:
                    self.observer.on_pad_cache(cpu, line_address, clock,
                                               True)
                hit = True
            if self.fault_hook is not None:
                extra += self.fault_hook.on_pad_event(
                    cpu, line_address, clock, hit)
            extra += 1  # the OTP XOR
            self._p_decryptions += 1
        if self.integrity:
            if self.lazy:
                # Multiset-hash update: throughput-bound, off the
                # critical path unless the hash unit back-pressures.
                hash_engine = self.hash_engine
                ready = hash_engine.issue(clock)
                extra += max(0, ready - clock - hash_engine.latency)
                self._p_lazy_hash_updates += 1
            else:
                extra += self._verify_climb(cpu, line_address, clock)
        return extra

    def _verify_climb(self, cpu: int, address: int, clock: int) -> int:
        """CHash verification: fetch the parent unless already trusted."""
        hash_engine = self.hash_engine
        ready = hash_engine.issue(clock)
        extra = max(0, ready - clock - hash_engine.latency)
        if self.fault_hook is not None:
            extra += self.fault_hook.on_verify_event(cpu, address, clock)
        parent = self._parent_table.get(address, _UNSET)
        if parent is _UNSET:
            parent = self.parent_of(address)
        observer = self.observer
        if parent is None:
            self._p_root_verifications += 1
            if observer is not None:
                observer.on_hash_verify(cpu, address, clock, 0)
            return extra
        # Probe the local L2 for the parent node in place (the
        # ``contains`` scan with touch=False — a trust check, not an
        # access, so it never perturbs LRU order).
        hierarchy = self.system.hierarchies[cpu]
        l2 = hierarchy.l2
        block = parent >> l2._offset_bits
        tag = block // l2._num_sets
        for line in l2._sets.get(block % l2._num_sets, ()):
            if line.tag == tag and line.state is not _INVALID:
                self._p_node_cache_hits += 1
                if observer is not None:
                    observer.on_hash_verify(cpu, address, clock, 1)
                return extra
        self._p_hash_fetches += 1
        if observer is not None:
            # Reported before the posted fetch so the verify event
            # precedes the nested miss it triggers.
            observer.on_hash_verify(cpu, address, clock, 2)
        # Fetch the parent through the normal coherent read path; its
        # own verification recurses via on_memory_fetch when it comes
        # from memory, and stops early when another cache supplies it.
        # The fetch is *posted*: execution continues speculatively and
        # retires once verification completes in the background ([7]'s
        # overlap; the paper attributes the CHash penalty mainly to
        # "the polluted L2 cache ... and the increased bus contention",
        # both of which this posted fetch still produces).
        # The L2 probe above just missed and node addresses are
        # line-aligned, so the generic access classification is skipped:
        # this IS the miss path (counter bumped as access() would).
        hierarchy._pending_l2_miss += 1
        self.system._execute_miss(cpu, clock, False, parent)
        return extra

    def on_writeback(self, cpu: int, line_address: int,
                     clock: int) -> None:
        """A dirty line left the chip; propagate pad + hash obligations."""
        system = self.system
        if system is None:
            raise SimulationError("layer not attached to a system")
        if self.encryption:
            invalidate = self._pad_invalidate_protocol
            affected = self.directory.on_writeback(cpu, line_address)
            self.pad_caches[cpu].install(line_address, 0)
            for other in affected:
                if invalidate:
                    self.pad_caches[other].invalidate(line_address)
                else:
                    self.pad_caches[other].install(line_address, 0)
            self._p_encryptions += 1
            if self.fault_hook is not None:
                self.fault_hook.on_pad_writeback(cpu, line_address,
                                                 affected)
            if affected:
                if invalidate:
                    transaction = system._next_transaction(
                        _PAD_INVALIDATE, line_address, cpu, 0, False)
                    system.bus.issue(transaction, clock, data_bytes=0)
                    self._p_pad_invalidates += 1
                else:
                    transaction = system._next_transaction(
                        _PAD_REQUEST, line_address, cpu, 0, True)
                    system.bus.issue(transaction, clock, data_bytes=16)
                    self._p_pad_updates += 1
        if self.integrity and not self.lazy:
            self._update_parent_hash(cpu, line_address, clock)
        elif self.integrity:
            self.hash_engine.issue(clock)
            self._p_lazy_hash_updates += 1

    def _update_parent_hash(self, cpu: int, address: int,
                            clock: int) -> None:
        """Write the parent node (its stored child digest changed)."""
        parent = self._parent_table.get(address, _UNSET)
        if parent is _UNSET:
            parent = self.parent_of(address)
        observer = self.observer
        if parent is None:
            self._p_root_updates += 1
            if observer is not None:
                observer.on_hash_update(cpu, address, clock, 0)
            return
        if self._writeback_depth >= self._max_writeback_depth:
            # Deep eviction cascades are batched by real hardware; cap
            # the model's recursion and account the clipped update.
            self._p_clipped_updates += 1
            if observer is not None:
                observer.on_hash_update(cpu, address, clock, 2)
            return
        self._writeback_depth += 1
        try:
            self._node_write(cpu, clock, parent)
            self._p_hash_updates += 1
            if observer is not None:
                observer.on_hash_update(cpu, address, clock, 1)
        finally:
            self._writeback_depth -= 1

    def _node_write(self, cpu: int, clock: int, parent: int) -> None:
        """One store to a (line-aligned) hash-tree node.

        ``CacheHierarchy.access`` fused in place for the node-update
        path: same classification, LRU touches, counter bumps and
        state transitions, minus the AccessResult object and the call
        layers (the hit latency is irrelevant — node updates are
        posted, so the reference path discarded the returned clock).
        """
        system = self.system
        hierarchy = system.hierarchies[cpu]
        l2 = hierarchy.l2
        block = parent >> l2._offset_bits
        tag = block // l2._num_sets
        entry = None
        for line in l2._sets.get(block % l2._num_sets, ()):
            if line.tag == tag and line.state is not _INVALID:
                entry = line
                break
        if entry is None:
            hierarchy._pending_l2_miss += 1
            system._execute_miss(cpu, clock, True, parent)
            return
        # L2 hit: touch LRU first (access() looks up with touch=True
        # before checking write permission).
        l2._tick += 1
        entry.last_used = l2._tick
        if not entry.state.can_write:
            hierarchy._pending_upgrade += 1
            system._execute_upgrade(cpu, clock, parent)
            return
        entry.state = _MODIFIED  # includes the silent E->M upgrade
        if hierarchy.l1.lookup(parent) is not None:
            hierarchy._pending_l1_hit += 1
            return
        # L1 refill from L2 (no bus traffic; inclusion preserved).
        hierarchy.l1.insert(parent, _SHARED)
        hierarchy._pending_l2_hit += 1
