"""Cache-to-memory protection (section 6 of the paper).

Functional models:

- :mod:`repro.memprotect.pads` — fast memory encryption (OTP pads with
  per-line sequence numbers, Suh [25] / Yang [29] style).
- :mod:`repro.memprotect.pad_cache` — the on-chip pad / sequence-number
  cache and the cross-processor pad coherence of section 6.1.
- :mod:`repro.memprotect.merkle` — the memory hash tree.
- :mod:`repro.memprotect.chash` — CHash [7]: L2-cached tree
  verification.
- :mod:`repro.memprotect.lhash` — LHash [25]-style lazy multiset-hash
  verification.

Timing model:

- :mod:`repro.memprotect.integrated` — the layer the SMP simulator
  consults on memory fetches and write-backs (Figure 10's
  "SENSS+Mem_OTP_Chash" configuration).
"""

from .chash import CachedHashTreeVerifier
from .integrated import MemProtectLayer
from .lhash import LazyVerifier
from .merkle import MerkleTree
from .pad_cache import PadCache, PadCoherenceDirectory
from .pads import FastMemoryEncryption

__all__ = [
    "CachedHashTreeVerifier",
    "FastMemoryEncryption",
    "LazyVerifier",
    "MemProtectLayer",
    "MerkleTree",
    "PadCache",
    "PadCoherenceDirectory",
]
