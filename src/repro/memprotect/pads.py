"""Fast memory encryption — OTP pads over cache-to-memory traffic.

Section 2.1: instead of running AES on the data (serializing the memory
read behind decryption), the processor encrypts by XORing the line with
a *pad* = AES_K(address, sequence). Pad generation overlaps the memory
access, so decryption costs one XOR. The sequence number changes on
every write of the line, otherwise two ciphertexts of the same address
would XOR to the plaintext difference — precisely the break shown for
naive bus encryption in section 3.1.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..crypto.aes import AES, BLOCK_BYTES
from ..crypto.otp import xor_bytes
from ..errors import CryptoError
from ..memory.dram import MainMemory


class FastMemoryEncryption:
    """Functional OTP encryption engine for one trusted domain.

    All processors of the group share the session key, so any of them
    can regenerate any pad given (address, sequence); what they must
    keep coherent is the *sequence number* of each line (section 6.1) —
    modeled by :class:`repro.memprotect.pad_cache.PadCoherenceDirectory`.
    """

    #: how many sequence numbers ahead of the current one the engine
    #: keeps precomputed per line (the hardware generates the next
    #: write's pad while the line sits dirty in L2, so the write-back
    #: XOR never waits on AES)
    PAD_WINDOW = 2

    def __init__(self, session_key: bytes, line_bytes: int = 64,
                 pad_window: Optional[int] = None):
        if line_bytes % BLOCK_BYTES != 0:
            raise CryptoError("line size must be a block multiple")
        self._aes = AES(session_key)
        self.line_bytes = line_bytes
        self._blocks = line_bytes // BLOCK_BYTES
        self._sequences: Dict[int, int] = {}
        self.pad_window = (self.PAD_WINDOW if pad_window is None
                           else pad_window)
        # (line, sequence) -> pad. Holds the memoized current pad plus
        # the precomputed window ahead; bounded by wholesale clearing.
        self._pads: Dict[tuple, bytes] = {}
        self._pad_cap = 1 << 16

    def sequence_of(self, line_address: int) -> int:
        return self._sequences.get(line_address, 0)

    @property
    def precomputed_pads(self) -> int:
        """Pads currently held (memoized + window-ahead)."""
        return len(self._pads)

    def _compute_pad(self, line_address: int, sequence: int) -> bytes:
        """One line's pad, uncached: AES_K(address || seq || block#).

        The 14-byte (address, sequence) prefix is built once and only
        the 2-byte block counter varies per AES call.
        """
        prefix = (line_address.to_bytes(8, "little")
                  + sequence.to_bytes(6, "little"))
        encrypt = self._aes.encrypt_block
        return b"".join(
            encrypt(prefix + block_index.to_bytes(2, "little"))
            for block_index in range(self._blocks))

    def pad(self, line_address: int, sequence: int) -> bytes:
        """AES_K(address || sequence || block#), one line's worth.

        Memoized, and primed a :attr:`pad_window` of future sequence
        numbers ahead: once a line's pad is requested, the pads its
        next writes will need are generated eagerly (off the critical
        path in hardware terms), so the bump-and-encrypt in
        :meth:`encrypt_line` finds its pad already waiting.
        """
        pads = self._pads
        pad = pads.get((line_address, sequence))
        if pad is None:
            if len(pads) >= self._pad_cap:
                pads.clear()
            pad = self._compute_pad(line_address, sequence)
            pads[(line_address, sequence)] = pad
        for ahead in range(sequence + 1,
                           sequence + 1 + self.pad_window):
            if (line_address, ahead) not in pads:
                pads[(line_address, ahead)] = self._compute_pad(
                    line_address, ahead)
        return pad

    def pad_reference(self, line_address: int, sequence: int) -> bytes:
        """The original per-block pad derivation (byte-wise spec).

        Kept as the executable specification the memoized/windowed
        :meth:`pad` is cross-checked against.
        """
        parts = []
        for block_index in range(self.line_bytes // BLOCK_BYTES):
            material = (line_address.to_bytes(8, "little")
                        + sequence.to_bytes(6, "little")
                        + block_index.to_bytes(2, "little"))
            parts.append(self._aes.encrypt_block(material))
        return b"".join(parts)

    def encrypt_line(self, line_address: int, plaintext: bytes) -> bytes:
        """Encrypt for write-back; bumps the line's sequence number."""
        if len(plaintext) != self.line_bytes:
            raise CryptoError("plaintext must be one line")
        sequence = self._sequences.get(line_address, 0) + 1
        self._sequences[line_address] = sequence
        return xor_bytes(plaintext, self.pad(line_address, sequence))

    def decrypt_line(self, line_address: int, ciphertext: bytes,
                     sequence: Optional[int] = None) -> bytes:
        """Decrypt a fetched line with the (current or given) sequence."""
        if len(ciphertext) != self.line_bytes:
            raise CryptoError("ciphertext must be one line")
        if sequence is None:
            sequence = self._sequences.get(line_address, 0)
        return xor_bytes(ciphertext, self.pad(line_address, sequence))

    # -- round-trip helpers against a MainMemory --------------------------

    def store(self, memory: MainMemory, line_address: int,
              plaintext: bytes) -> None:
        memory.write_line(line_address,
                          self.encrypt_line(line_address, plaintext))

    def load(self, memory: MainMemory, line_address: int) -> bytes:
        return self.decrypt_line(line_address,
                                 memory.read_line(line_address))
