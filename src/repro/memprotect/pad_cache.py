"""On-chip pad caches and cross-processor pad coherence (section 6.1).

Each processor keeps the latest pads (equivalently, sequence numbers)
for memory lines in an on-chip cache — the "64KB pad cache" of [29] or
the sequence-number cache (SNC) of section 7.7. On an SMP the cached
pads can go stale: if processor A writes line D back (bumping D's
sequence), B's cached pad for D is outdated. The paper resolves this
exactly like data coherence: a **write-invalidate** or **write-update**
protocol over pads, carried by the type-"01" (pad invalidate) and
type-"10" (pad request) bus messages of section 7.1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set

from ..errors import ConfigError

#: distinguishes "absent" from a cached sequence of 0 on the lookup
#: fast path
_MISS = object()


class PadCache:
    """LRU cache of (line -> sequence) pads for one processor.

    ``capacity=None`` is the "perfect SNC" of section 7.7 (the paper
    notes the perfect/large difference is small [29], so Figure 10 uses
    perfect).
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ConfigError("pad cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, line_address: int) -> Optional[int]:
        """Cached sequence for a line, refreshing LRU; None on miss."""
        sequence = self._entries.get(line_address, _MISS)
        if sequence is _MISS:
            self.misses += 1
            return None
        if self.capacity is not None:
            # Recency only matters when something can be evicted; the
            # perfect SNC (capacity=None) skips the LRU churn.
            self._entries.move_to_end(line_address)
        self.hits += 1
        return sequence

    def install(self, line_address: int, sequence: int) -> None:
        self._entries[line_address] = sequence
        if self.capacity is not None:
            self._entries.move_to_end(line_address)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self, line_address: int) -> bool:
        if line_address in self._entries:
            del self._entries[line_address]
            self.invalidations += 1
            return True
        return False

    def update(self, line_address: int, sequence: int) -> bool:
        """Write-update path: refresh in place if present."""
        if line_address in self._entries:
            self._entries[line_address] = sequence
            return True
        return False

    def __len__(self) -> int:
        return len(self._entries)


class PadCoherenceDirectory:
    """System-wide pad coherence bookkeeping for the timing model.

    Tracks, per memory line, the current pad version and which
    processors hold a fresh copy. ``on_writeback`` returns the PIDs
    whose copies went stale (write-invalidate) or need an update
    message (write-update); ``on_fetch`` says whether the reader must
    issue a pad request (type-"10") first.
    """

    def __init__(self, num_processors: int,
                 protocol: str = "write-invalidate"):
        if protocol not in ("write-invalidate", "write-update"):
            raise ConfigError(f"unknown pad protocol {protocol!r}")
        self.num_processors = num_processors
        self.protocol = protocol
        self._version: Dict[int, int] = {}
        self._holders: Dict[int, Set[int]] = {}
        self.invalidate_messages = 0
        self.update_messages = 0
        self.request_messages = 0

    def on_writeback(self, writer: int, line_address: int) -> List[int]:
        """Writer re-encrypted the line; returns affected remote PIDs."""
        version = self._version
        version[line_address] = version.get(line_address, 0) + 1
        holders = self._holders.setdefault(line_address, set())
        # Fast path: the writer is the sole holder (or the first) —
        # nobody's pad goes stale and no message is due. This is the
        # common case for private data, so it skips the set/sort churn.
        if not holders:
            holders.add(writer)
            return []
        if writer in holders and len(holders) == 1:
            return []
        affected = sorted(holders - {writer})
        holders.add(writer)
        if self.protocol == "write-invalidate":
            if affected:
                holders.difference_update(affected)
                self.invalidate_messages += 1
        else:  # write-update: everyone stays a holder, one data message
            if affected:
                self.update_messages += 1
        return affected

    def on_fetch(self, reader: int, line_address: int) -> bool:
        """Reader decrypts a line from memory; True if a pad request
        message must go on the bus first."""
        holders = self._holders.setdefault(line_address, set())
        if reader in holders:
            return False
        holders.add(reader)
        if line_address not in self._version:
            # Never written under encryption: the initial pad is
            # derivable locally from (address, 0); no bus message.
            return False
        self.request_messages += 1
        return True

    def holders_of(self, line_address: int) -> Set[int]:
        return set(self._holders.get(line_address, ()))
