"""Deterministic fault plans for the timing simulation.

A :class:`FaultPlan` is a frozen, seeded description of *what goes
wrong and when*: each :class:`FaultSpec` names a fault kind and a
trigger index into the deterministic event stream that kind perturbs.
Bus faults trigger on the Nth protected (mask-path) message of a
group; pad faults on the Nth pad-cache consultation of a victim CPU;
Merkle faults on the Nth hash-tree verification. Because those
streams are themselves deterministic, the same plan on the same
workload always injects at the same simulated cycle — runs are
exactly repeatable, which is what makes the detection scoreboard a
regression artifact rather than a fuzzing log.

The fault taxonomy maps onto the paper's attack types
(docs/fault_injection.md has the full table):

=============  =====================================================
kind           models
=============  =====================================================
drop           Type 1: a receiver never sees a protected message
reorder        Type 2: two consecutive messages swap delivery order
spoof          Type 3: a forged message claiming a member's PID
bit-flip       corrupted ciphertext on the wire (integrity of a
               single transfer)
mask-desync    a group member's mask array slips a slot (section 4.4
               state divergence)
pad-corrupt    a poisoned pad-cache entry (section 6.1 SNC state)
seq-corrupt    a poisoned sequence number for a line (same structure,
               different field)
merkle-flip    a flipped hash-tree node (section 6.2 CHash state)
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..sim.rng import DeterministicRng


class FaultKind:
    """String codes for the fault taxonomy (stable, schema-visible)."""

    DROP = "drop"
    REORDER = "reorder"
    SPOOF = "spoof"
    BIT_FLIP = "bit-flip"
    MASK_DESYNC = "mask-desync"
    PAD_CORRUPT = "pad-corrupt"
    SEQ_CORRUPT = "seq-corrupt"
    MERKLE_FLIP = "merkle-flip"

    #: kinds injected at the bus arbiter (need the SENSS layer)
    BUS = (DROP, REORDER, SPOOF, BIT_FLIP, MASK_DESYNC)
    #: kinds injected in the memory-protection layer
    MEMORY = (PAD_CORRUPT, SEQ_CORRUPT, MERKLE_FLIP)
    ALL = BUS + MEMORY


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``trigger`` indexes the kind's deterministic event stream (see
    module docstring). ``cpu`` is the victim/culprit processor where
    one is meaningful: the desynced member for ``mask-desync``, the
    processor whose SNC is poisoned for pad faults (required there).
    ``victims`` are the receiving PIDs affected by a bus fault (empty
    = every member except the sender). ``claimed_pid`` is the PID a
    ``spoof`` forges.
    """

    kind: str
    trigger: int
    group_id: int = 0
    cpu: int = -1
    victims: Tuple[int, ...] = ()
    claimed_pid: int = -1
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.trigger < 0:
            raise ConfigError("fault trigger must be non-negative")
        if self.kind in (FaultKind.PAD_CORRUPT, FaultKind.SEQ_CORRUPT) \
                and self.cpu < 0:
            raise ConfigError(f"{self.kind} needs a victim cpu")
        if self.kind == FaultKind.SPOOF and self.claimed_pid < 0:
            raise ConfigError("spoof needs a claimed_pid")
        if not self.label:
            object.__setattr__(
                self, "label", f"{self.kind}@{self.trigger}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of planned faults."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @staticmethod
    def single(kind: str, trigger: int, **kwargs) -> "FaultPlan":
        """The one-fault plan most tests and CI smoke points use."""
        return FaultPlan(specs=(FaultSpec(kind, trigger, **kwargs),))

    @staticmethod
    def random(seed: int, count: int, num_cpus: int,
               kinds: Optional[Sequence[str]] = None,
               max_trigger: int = 50) -> "FaultPlan":
        """A seeded plan of ``count`` faults drawn from ``kinds``.

        The same (seed, count, num_cpus, kinds, max_trigger) always
        yields the same plan.
        """
        if count < 0:
            raise ConfigError("fault count must be non-negative")
        if num_cpus < 1:
            raise ConfigError("need at least one cpu")
        rng = DeterministicRng(seed)
        pool = tuple(kinds) if kinds is not None else FaultKind.ALL
        for kind in pool:
            if kind not in FaultKind.ALL:
                raise ConfigError(f"unknown fault kind {kind!r}")
        specs: List[FaultSpec] = []
        for index in range(count):
            kind = rng.choice(pool)
            trigger = rng.randint(0, max_trigger)
            cpu = rng.randint(0, num_cpus - 1)
            claimed = rng.randint(0, num_cpus - 1)
            specs.append(FaultSpec(
                kind, trigger, cpu=cpu,
                claimed_pid=claimed if kind == FaultKind.SPOOF else -1,
                label=f"{kind}@{trigger}#{index}"))
        return FaultPlan(specs=tuple(specs), seed=seed)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def bus_specs(self) -> List[FaultSpec]:
        return [spec for spec in self.specs
                if spec.kind in FaultKind.BUS]

    def memory_specs(self) -> List[FaultSpec]:
        return [spec for spec in self.specs
                if spec.kind in FaultKind.MEMORY]


# Backwards-friendly alias used in docs/CLI tables.
RECOVERY_POLICIES = ("halt", "rekey-replay", "quarantine")
