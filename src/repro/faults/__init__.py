"""Deterministic fault injection for the timing simulation.

The subsystem has four parts (see docs/fault_injection.md):

- :mod:`~repro.faults.plan` — seeded :class:`FaultPlan` /
  :class:`FaultSpec` descriptions of what goes wrong and when;
- :mod:`~repro.faults.injector` — :class:`FaultInjector`, which
  attaches to a built system via optional hooks (bus + memory
  protection) and executes the plan;
- :mod:`~repro.faults.scoreboard` — per-fault detection records
  (mechanism, latency in transactions and cycles, undetected faults);
- :mod:`~repro.faults.recovery` — what happens after detection:
  ``halt`` (the paper's global alarm), ``rekey-replay`` or
  ``quarantine``.

``python -m repro faults`` runs the campaign matrix from
:mod:`~repro.faults.campaign`.
"""

from .campaign import (campaign_config, default_spec, run_campaign,
                       verify_identity)
from .injector import FAULT_KIND_INDEX, MECHANISM_INDEX, FaultInjector
from .plan import FaultKind, FaultPlan, FaultSpec
from .recovery import (HALT, POLICIES, QUARANTINE, REKEY_REPLAY,
                       RecoveryEngine)
from .scoreboard import (MECH_MAC, MECH_MERKLE, MECH_PAD, MECH_SPOOF,
                         MECHANISMS, DetectionScoreboard, FaultRecord)

__all__ = [
    "FaultKind", "FaultPlan", "FaultSpec", "FaultInjector",
    "DetectionScoreboard", "FaultRecord", "RecoveryEngine",
    "HALT", "REKEY_REPLAY", "QUARANTINE", "POLICIES",
    "MECH_MAC", "MECH_SPOOF", "MECH_PAD", "MECH_MERKLE", "MECHANISMS",
    "FAULT_KIND_INDEX", "MECHANISM_INDEX",
    "run_campaign", "verify_identity", "campaign_config",
    "default_spec",
]
