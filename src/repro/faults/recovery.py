"""Recovery policies applied when an injected fault is detected.

The paper stops at detection: "a global alarm is raised and the
program is halted" (section 4.3). That is the default ``halt`` policy
here — the run aborts with the error class matching the detecting
mechanism, exactly what the timing-path error tests pin. Two
AEGIS-style continuations are layered on top:

``rekey-replay``
    Roll back to the last MAC checkpoint (everything up to the last
    verified interval is trusted), redistribute a **fresh session
    key** through the real dispatch protocol of
    :mod:`repro.core.dispatch` — a new :class:`ProgramPackage` wraps
    the key under each member's public key and
    :func:`establish_group` reinstalls channel state — and replay the
    window. The simulated cost is the replayed window plus a fixed
    re-keying charge; the run then continues to completion.

``quarantine``
    Evict the offending PID from the group: its bit is cleared in the
    :class:`~repro.core.groups.GroupProcessorBitMatrix` and it is
    removed from the SENSS layer's member list, so it neither
    receives masks nor rotates as MAC initiator. The run continues
    degraded. Faults with no attributable culprit (e.g. a flipped
    Merkle node — the "attacker" is memory) fall back to a penalty
    without an eviction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import (AuthenticationFailure, ConfigError,
                      IntegrityViolation, PadCoherenceViolation,
                      SpoofDetected)
from ..sim.rng import DeterministicRng
from .scoreboard import (MECH_MAC, MECH_MERKLE, MECH_PAD, MECH_SPOOF,
                         DetectionScoreboard, FaultRecord)

HALT = "halt"
REKEY_REPLAY = "rekey-replay"
QUARANTINE = "quarantine"
POLICIES = (HALT, REKEY_REPLAY, QUARANTINE)


class RecoveryEngine:
    """Applies one policy to every detection of a run."""

    def __init__(self, system, policy: str = HALT,
                 scoreboard: Optional[DetectionScoreboard] = None):
        if policy not in POLICIES:
            raise ConfigError(f"unknown recovery policy {policy!r}")
        self.system = system
        self.policy = policy
        self.scoreboard = scoreboard
        config = system.config
        # Fixed re-keying charge: encrypt + decrypt of the fresh IV
        # broadcast, plus one memory-latency hop for the new package.
        self.rekey_cycles = (2 * config.crypto.aes_latency
                             + config.bus.cache_to_memory_latency)
        self.quarantine_cycles = 2 * config.bus.cycle_cpu_cycles
        #: group -> cycle of the last verified MAC checkpoint
        self.checkpoints: Dict[int, int] = {}
        self.rekeys = 0
        self.quarantined: List[int] = []
        self._shus = None
        self._matrix = None

    # -- checkpointing (driven by the injector) ------------------------

    def on_checkpoint(self, group_id: int, cycle: int) -> None:
        self.checkpoints[group_id] = cycle

    # -- the policy dispatch -------------------------------------------

    def handle(self, records: List[FaultRecord], mechanism: str,
               group_id: int, culprit_pid: int, cycle: int) -> int:
        """Apply the policy; returns the penalty in cycles.

        Under ``halt`` this raises the error class matching the
        detecting mechanism and never returns.
        """
        if self.policy == HALT:
            self._halt(records, mechanism, group_id, cycle)
        if self.policy == REKEY_REPLAY:
            penalty = self._rekey(group_id, cycle)
        else:
            penalty = self._quarantine(group_id, culprit_pid)
        for record in records:
            record.recovery = self.policy
            record.recovered = True
        if self.scoreboard is not None:
            self.scoreboard.penalty_cycles += penalty
        return penalty

    def _halt(self, records: List[FaultRecord], mechanism: str,
              group_id: int, cycle: int) -> None:
        for record in records:
            record.recovery = HALT
        labels = ", ".join(record.label for record in records)
        if mechanism == MECH_SPOOF:
            raise SpoofDetected(
                f"processor snooped its own PID ({labels})",
                cycle=cycle, group_id=group_id)
        if mechanism == MECH_MAC:
            raise AuthenticationFailure(
                f"MAC interval check failed ({labels})",
                cycle=cycle, group_id=group_id)
        if mechanism == MECH_PAD:
            raise PadCoherenceViolation(
                f"stale pad consulted ({labels})", cycle=cycle)
        if mechanism == MECH_MERKLE:
            raise IntegrityViolation(
                f"hash tree mismatch at cycle {cycle} ({labels})")
        raise AuthenticationFailure(
            f"fault detected by {mechanism} ({labels})", cycle=cycle,
            group_id=group_id)

    # -- rekey-replay ---------------------------------------------------

    def _members_of(self, group_id: int) -> List[int]:
        layer = self.system.bus.security_layer
        if layer is not None:
            return list(layer.group_state(group_id).member_pids)
        return list(range(self.system.config.num_processors))

    def _build_shus(self):
        # Setup-time only: small RSA keys, one SHU per processor,
        # seeded so recovery is as deterministic as the rest.
        from ..core.shu import SecurityHardwareUnit
        config = self.system.config
        return [SecurityHardwareUnit(
                    pid, max_groups=config.senss.max_groups,
                    max_processors=config.senss.max_processors,
                    rng=DeterministicRng(0xFA017 + pid))
                for pid in range(config.num_processors)]

    def _rekey(self, group_id: int, cycle: int) -> int:
        from ..core.dispatch import ProgramDistributor, establish_group
        group = max(0, group_id)
        members = self._members_of(group)
        if self._shus is None:
            self._shus = self._build_shus()
        distributor = ProgramDistributor(
            DeterministicRng(0x5E55 + group + self.rekeys))
        package = distributor.package(
            f"rekey{self.rekeys}", b"", self._shus, members,
            auth_interval=self.system.config.senss.auth_interval)
        establish_group(self._shus, group, package,
                        DeterministicRng(0x1A7E + self.rekeys))
        self.rekeys += 1
        replay_window = max(0, cycle - self.checkpoints.get(group, 0))
        return replay_window + self.rekey_cycles

    # -- quarantine -----------------------------------------------------

    def _quarantine(self, group_id: int, culprit_pid: int) -> int:
        from ..core.groups import GroupProcessorBitMatrix
        group = max(0, group_id)
        if culprit_pid < 0:
            return self.quarantine_cycles  # nobody to evict
        config = self.system.config
        if self._matrix is None:
            self._matrix = GroupProcessorBitMatrix(
                config.senss.max_groups, config.senss.max_processors)
        members = self._members_of(group)
        if culprit_pid in members and len(members) > 1:
            members.remove(culprit_pid)
            layer = self.system.bus.security_layer
            if layer is not None:
                state = layer.group_state(group)
                state.member_pids[:] = members
                state.initiator_index %= len(members)
            if culprit_pid not in self.quarantined:
                self.quarantined.append(culprit_pid)
        self._matrix.set_membership(group, set(members))
        return self.quarantine_cycles
