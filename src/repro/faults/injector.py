"""The fault injector: perturbs the timing simulation, watches defenses.

``FaultInjector.attach`` wires into the two optional hooks added for
it — ``SharedBus.fault_hook`` (called on every granted transaction,
after observers, before the security layer's ``after_transfer``) and
``MemProtectLayer.fault_hook`` (pad-cache consultations, pad
write-back refreshes, hash-tree verifies). Both are single
``is not None`` tests on the miss/security slow path: the fused hit
loop never consults them, and a run with no injector attached (or an
attached injector whose plan never triggers) is bit-identical to an
unfaulted run (pinned by tests/faults/test_identity.py).

**Detection model.** The functional protocol (repro.core) chains
every protected message into a per-member CBC-MAC; the interval check
compares the members' chains (section 4.3). The injector mirrors that
with cheap integer hash chains: the *sender* of a message chains its
fingerprint at send time (it knows what it sent), every *receiver*
chains what was delivered to it, in delivery order. A drop leaves a
victim's chain short; a reorder gives the sender a different order
than everyone else; a spoof or bit-flip feeds victims a fingerprint
nobody sent. When the SENSS layer's MAC broadcast appears on the bus,
the injector compares chains exactly where the hardware would — any
divergence is a detection, attributed to ``mac_interval``. A spoof
delivered to the PID it claims is detected immediately
(``spoof_self``), matching the paper's own-PID snoop rule. Pad and
Merkle corruptions are *armed* state poisonings, detected when the
poisoned state is next consulted (``pad_coherence`` /
``merkle_verify``).

Detected faults are handed to the :class:`~repro.faults.recovery.
RecoveryEngine`; under ``halt`` the matching error class propagates
out of ``system.run``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bus.transaction import BusTransaction, TransactionType
from ..errors import ConfigError
from .plan import FaultKind, FaultPlan, FaultSpec
from .recovery import HALT, RecoveryEngine
from .scoreboard import (MECH_MAC, MECH_MERKLE, MECH_PAD, MECH_SPOOF,
                         MECHANISMS, DetectionScoreboard, FaultRecord)

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
#: salts separating a corrupted delivery from the honest fingerprint
_SALT_FLIP = 0xF11F
_SALT_SPOOF = 0x5B00F
_SALT_DESYNC = 0xDE51

#: stable integer code per fault kind / mechanism (obs payload words)
FAULT_KIND_INDEX = {kind: index
                    for index, kind in enumerate(FaultKind.ALL)}
MECHANISM_INDEX = {name: index
                   for index, name in enumerate(MECHANISMS)}

_TX_TYPE_INDEX = {tx_type: index
                  for index, tx_type in enumerate(TransactionType)}


def _mix(chain: int, value: int) -> int:
    return ((chain ^ value) * _FNV_PRIME) & _MASK64


class FaultInjector:
    """Executes a :class:`FaultPlan` against one simulated run."""

    def __init__(self, plan: FaultPlan, policy: str = HALT):
        self.plan = plan
        self.policy = policy
        self.scoreboard = DetectionScoreboard()
        self.recovery: Optional[RecoveryEngine] = None
        self.system = None
        self._bus = None
        self._injecting = False
        # Per-group integer MAC chains: group -> {pid: chain}.
        self._chains: Dict[int, Dict[int, int]] = {}
        # Deterministic stream cursors.
        self._stream_index: Dict[int, int] = {}   # group -> msg count
        self._pad_index: Dict[int, int] = {}      # cpu -> pad events
        self._verify_index = 0                    # hash verifies
        # Planned faults keyed by their trigger point.
        self._bus_pending: Dict[Tuple[int, int], List[FaultSpec]] = {}
        self._pad_pending: Dict[Tuple[int, int], List[FaultSpec]] = {}
        self._merkle_pending: Dict[int, List[FaultSpec]] = {}
        for spec in plan:
            if spec.kind in FaultKind.BUS:
                self._bus_pending.setdefault(
                    (spec.group_id, spec.trigger), []).append(spec)
            elif spec.kind == FaultKind.MERKLE_FLIP:
                self._merkle_pending.setdefault(
                    spec.trigger, []).append(spec)
            else:
                self._pad_pending.setdefault(
                    (spec.cpu, spec.trigger), []).append(spec)
        # Armed/awaiting state.
        self._await_mac: Dict[int, List[Tuple[FaultRecord, int]]] = {}
        self._held: Dict[int, Tuple[int, int]] = {}  # group: (fp, pid)
        self._poisoned: Dict[Tuple[int, int], FaultRecord] = {}
        self._armed_merkle: List[FaultRecord] = []
        self._flushed: Dict[str, int] = {}

    # -- attachment ----------------------------------------------------

    def attach(self, system) -> "FaultInjector":
        """Hook the bus and (if present) the memory-protection layer."""
        needs_senss = any(spec.kind in FaultKind.BUS
                          for spec in self.plan)
        needs_memprotect = any(spec.kind in FaultKind.MEMORY
                               for spec in self.plan)
        if needs_senss and system.bus.security_layer is None:
            raise ConfigError(
                "bus fault kinds need the SENSS layer attached "
                "(senss.enabled=True)")
        if needs_memprotect and system.memprotect is None:
            raise ConfigError(
                "pad/merkle fault kinds need the memory-protection "
                "layer attached")
        if any(spec.kind == FaultKind.MERKLE_FLIP for spec in self.plan):
            memprotect = system.memprotect
            if not memprotect.integrity or memprotect.lazy:
                raise ConfigError(
                    "merkle-flip needs integrity_enabled without "
                    "lazy_verification")
        if any(spec.kind in (FaultKind.PAD_CORRUPT,
                             FaultKind.SEQ_CORRUPT)
               for spec in self.plan):
            if not system.memprotect.encryption or \
                    system.memprotect.direct_encryption:
                raise ConfigError(
                    "pad fault kinds need OTP memory encryption")
        self.system = system
        self._bus = system.bus
        system.bus.fault_hook = self._on_bus_tx
        if system.memprotect is not None:
            system.memprotect.fault_hook = self
        self.recovery = RecoveryEngine(system, self.policy,
                                       self.scoreboard)
        system.stats.register_flusher(self._flush_stats)
        return self

    def prime(self, stream=None, pad=None, verify: int = 0,
              mac=None) -> "FaultInjector":
        """Fast-forward the deterministic stream cursors to a
        checkpointed clean prefix (``repro.faults.campaign`` fork
        mode; call after :meth:`attach`).

        ``stream``/``pad``/``verify`` are the counts a
        ``_PrefixCountingHook`` observed up to the snapshot — the
        injector's trigger arithmetic continues from them exactly as
        if it had watched the prefix itself. ``mac`` carries the last
        MAC checkpoint cycle per group into the recovery engine, so a
        ``rekey-replay`` recovery computes the same replay window a
        cold run would.
        """
        self._stream_index = {int(group): int(count)
                              for group, count in (stream or {}).items()}
        self._pad_index = {int(cpu): int(count)
                           for cpu, count in (pad or {}).items()}
        self._verify_index = int(verify)
        for group, cycle in (mac or {}).items():
            self.recovery.on_checkpoint(int(group), int(cycle))
        return self

    def detach(self) -> None:
        if self.system is None:
            return
        if self.system.bus.fault_hook == self._on_bus_tx:
            self.system.bus.fault_hook = None
        memprotect = self.system.memprotect
        if memprotect is not None and memprotect.fault_hook is self:
            memprotect.fault_hook = None

    # -- chain bookkeeping ---------------------------------------------

    def _group_chains(self, group_id: int) -> Dict[int, int]:
        chains = self._chains.get(group_id)
        if chains is None:
            layer = self._bus.security_layer
            if layer is not None:
                members = layer.group_state(group_id).member_pids
            else:
                members = range(self.system.config.num_processors)
            chains = {pid: _FNV_OFFSET for pid in members}
            self._chains[group_id] = chains
        return chains

    def _fingerprint(self, transaction: BusTransaction,
                     index: int) -> int:
        fp = _mix(_FNV_OFFSET, index)
        fp = _mix(fp, transaction.address)
        return _mix(fp, (_TX_TYPE_INDEX[transaction.type] << 8)
                    | (transaction.source_pid & 0xFF))

    @staticmethod
    def _chain_all(chains: Dict[int, int], fp: int) -> None:
        for pid in chains:
            chains[pid] = _mix(chains[pid], fp)

    def _resync(self, group_id: int) -> None:
        """Post-recovery: fresh IVs restart every member's chain."""
        chains = self._chains.get(group_id)
        if chains:
            for pid in chains:
                chains[pid] = _FNV_OFFSET

    # -- bus hook ------------------------------------------------------

    def _on_bus_tx(self, transaction: BusTransaction) -> None:
        if transaction.type is TransactionType.AUTH_MAC:
            self._on_auth_mac(transaction)
            return
        if self._injecting:
            return  # a transaction the injector itself put on the bus
        if not (transaction.type.carries_data
                and transaction.supplied_by_cache):
            return
        group = transaction.group_id
        index = self._stream_index.get(group, 0)
        self._stream_index[group] = index + 1
        fp = self._fingerprint(transaction, index)
        sender = transaction.source_pid
        chains = self._group_chains(group)
        held = self._held.pop(group, None)

        specs = self._bus_pending.pop((group, index), None)
        if specs is None:
            self._chain_all(chains, fp)
        else:
            for spec in specs:
                self._apply_bus_fault(spec, transaction, index, fp,
                                      sender, chains)
        if held is not None:
            # Release the reordered message: everyone but its sender
            # (who chained it at send time) sees it late, here.
            held_fp, held_sender = held
            for pid in chains:
                if pid != held_sender:
                    chains[pid] = _mix(chains[pid], held_fp)

    def _apply_bus_fault(self, spec: FaultSpec,
                         transaction: BusTransaction, index: int,
                         fp: int, sender: int,
                         chains: Dict[int, int]) -> None:
        group = transaction.group_id
        cycle = transaction.grant_cycle
        # tx positions are in *protected-message* stream units — the
        # same stream the authentication interval counts — so
        # latency_tx <= auth_interval holds by construction for
        # MAC-interval detections.
        record = self.scoreboard.open_record(
            spec.kind, spec.label, group_id=group,
            cpu=spec.cpu if spec.cpu >= 0 else sender,
            cycle=cycle, tx=index)
        self._emit_inject(record, cycle)

        if spec.kind == FaultKind.DROP:
            victims = set(spec.victims) or \
                {pid for pid in chains if pid != sender}
            victims.discard(sender)
            for pid in chains:
                if pid not in victims:
                    chains[pid] = _mix(chains[pid], fp)
            if victims & set(chains):
                self._await_mac.setdefault(group, []).append(
                    (record, sender))
            return

        if spec.kind == FaultKind.REORDER:
            # Hold this message past the next one. The sender chains
            # at send time (true order); receivers will chain it when
            # the next protected message releases it.
            chains[sender] = _mix(chains.get(sender, _FNV_OFFSET), fp)
            self._held[group] = (fp, sender)
            self._await_mac.setdefault(group, []).append(
                (record, sender))
            return

        if spec.kind == FaultKind.BIT_FLIP:
            victims = set(spec.victims) or \
                {pid for pid in chains if pid != sender}
            victims.discard(sender)
            corrupted = _mix(fp, _SALT_FLIP)
            for pid in chains:
                chains[pid] = _mix(chains[pid],
                                   corrupted if pid in victims else fp)
            if victims & set(chains):
                self._await_mac.setdefault(group, []).append(
                    (record, sender))
            return

        if spec.kind == FaultKind.MASK_DESYNC:
            victim = spec.cpu if spec.cpu >= 0 else sender
            self._desync_mask_array(group)
            tainted = _mix(fp, _SALT_DESYNC)
            for pid in chains:
                chains[pid] = _mix(chains[pid],
                                   tainted if pid == victim else fp)
            if victim in chains:
                self._await_mac.setdefault(group, []).append(
                    (record, victim))
            return

        # FaultKind.SPOOF: the honest message is delivered intact, the
        # attacker adds a forged one claiming a member's PID.
        self._chain_all(chains, fp)
        claimed = spec.claimed_pid
        victims = set(spec.victims) if spec.victims else set(chains)
        forged_fp = _mix(fp, _SALT_SPOOF + claimed)
        if claimed in victims and claimed in chains:
            # Own-PID snoop: immediate global alarm (section 4.3).
            forged = self._issue_forged(transaction, claimed, group)
            self.scoreboard.mark_detected(record, MECH_SPOOF,
                                          forged.grant_cycle,
                                          index + 1)
            self._emit_detect(record)
            penalty = self.recovery.handle(
                [record], MECH_SPOOF, group, -1, forged.grant_cycle)
            self._charge_bus(forged.grant_cycle, penalty)
            self._resync(group)
            return
        for pid in victims:
            if pid in chains:
                chains[pid] = _mix(chains[pid], forged_fp)
        self._await_mac.setdefault(group, []).append((record, -1))
        self._issue_forged(transaction, claimed, group)

    def _issue_forged(self, original: BusTransaction, claimed: int,
                      group: int) -> BusTransaction:
        """Put the forged message on the real bus (occupancy/traffic)."""
        forged = BusTransaction(original.type, original.address,
                                claimed, group, supplied_by_cache=True)
        self._injecting = True
        try:
            self._bus.issue(forged, self._bus.free_at,
                            data_bytes=self.system.config.l2.line_bytes)
        finally:
            self._injecting = False
        return forged

    def _desync_mask_array(self, group: int) -> None:
        layer = self._bus.security_layer
        if layer is None:
            return
        mask_array = layer.group_state(group).mask_array
        if not mask_array.is_perfect:
            # The victim's slot misses a regeneration window: its next
            # readiness slips by one AES pass, a real timing wound.
            slot = mask_array._sequence % mask_array.num_masks
            mask_array._ready[slot] += mask_array.aes_latency

    # -- MAC checkpoint ------------------------------------------------

    def _on_auth_mac(self, transaction: BusTransaction) -> None:
        group = transaction.group_id
        cycle = transaction.grant_cycle
        chains = self._chains.get(group)
        pending = self._await_mac.pop(group, [])
        diverged = chains is not None and len(set(chains.values())) > 1
        if diverged and pending:
            records = [record for record, _ in pending]
            culprit = next((pid for _, pid in pending if pid >= 0), -1)
            stream = self._stream_index.get(group, 0)
            for record in records:
                self.scoreboard.mark_detected(record, MECH_MAC, cycle,
                                              stream)
                self._emit_detect(record)
            penalty = self.recovery.handle(records, MECH_MAC, group,
                                           culprit, cycle)
            self._charge_bus(cycle, penalty)
            self._resync(group)
        elif diverged:
            # Divergence with no open record (should not happen):
            # resync so one anomaly is not reported at every interval.
            self._resync(group)
        self.recovery.on_checkpoint(group, cycle)

    def _charge_bus(self, cycle: int, penalty: int) -> None:
        if penalty > 0:
            bus = self._bus
            bus._free_at = max(bus._free_at, cycle) + penalty

    # -- memory-protection hooks ---------------------------------------

    def on_pad_event(self, cpu: int, line_address: int, clock: int,
                     hit: bool) -> int:
        """Pad/SNC consulted; returns recovery penalty cycles, if any."""
        penalty = 0
        key = (cpu, line_address)
        index = self._pad_index.get(cpu, 0)
        self._pad_index[cpu] = index + 1
        record = self._poisoned.pop(key, None)
        if record is not None:
            if hit:
                # The poisoned entry was used: garbage plaintext,
                # caught by the pad coherence/decryption check. tx
                # positions count this CPU's pad consultations.
                self.scoreboard.mark_detected(record, MECH_PAD, clock,
                                              index)
                self._emit_detect(record)
                penalty += self.recovery.handle([record], MECH_PAD, -1,
                                                -1, clock)
            else:
                record.masked = True  # entry gone before consultation
        for spec in self._pad_pending.pop((cpu, index), ()):
            poisoned = self.scoreboard.open_record(
                spec.kind, spec.label, cpu=cpu, cycle=clock, tx=index)
            self._emit_inject(poisoned, clock)
            self._corrupt_pad_entry(cpu, line_address)
            self._poisoned[key] = poisoned
        return penalty

    def _corrupt_pad_entry(self, cpu: int, line_address: int) -> None:
        entries = self.system.memprotect.pad_caches[cpu]._entries
        if line_address in entries:
            entries[line_address] ^= 0x5A5A

    def on_pad_writeback(self, cpu: int, line_address: int,
                         affected) -> None:
        """A write-back refreshed/invalidated pad entries: poisoned
        state it covered is silently healed — a *masked* fault."""
        self._mask_poison(cpu, line_address)
        for other in affected:
            self._mask_poison(other, line_address)

    def _mask_poison(self, cpu: int, line_address: int) -> None:
        record = self._poisoned.pop((cpu, line_address), None)
        if record is not None:
            record.masked = True

    def on_verify_event(self, cpu: int, address: int,
                        clock: int) -> int:
        """Hash-tree verify; armed node flips are caught here."""
        penalty = 0
        index = self._verify_index
        self._verify_index = index + 1
        if self._armed_merkle:
            armed, self._armed_merkle = self._armed_merkle, []
            for record in armed:
                # tx positions count hash-tree verification climbs.
                self.scoreboard.mark_detected(record, MECH_MERKLE,
                                              clock, index)
                self._emit_detect(record)
            penalty += self.recovery.handle(armed, MECH_MERKLE, -1, -1,
                                            clock)
        for spec in self._merkle_pending.pop(index, ()):
            record = self.scoreboard.open_record(
                spec.kind, spec.label, cpu=cpu, cycle=clock, tx=index)
            self._emit_inject(record, clock)
            self._armed_merkle.append(record)
        return penalty

    # -- observability -------------------------------------------------

    def _emit_inject(self, record: FaultRecord, cycle: int) -> None:
        obs = self.system._obs
        if obs is not None:
            obs.on_fault_inject(record, cycle)

    def _emit_detect(self, record: FaultRecord) -> None:
        obs = self.system._obs
        if obs is not None:
            obs.on_fault_detect(record)

    # -- stats export --------------------------------------------------

    def _flush_stats(self) -> None:
        scoreboard = self.scoreboard
        current = {
            "faults.injected": scoreboard.injected,
            "faults.detected": scoreboard.detected,
            "faults.masked": scoreboard.masked,
            "faults.recovered": scoreboard.recovered,
            "faults.penalty_cycles": scoreboard.penalty_cycles,
        }
        for mechanism, count in scoreboard.by_mechanism().items():
            current[f"faults.by_mechanism.{mechanism}"] = count
        add = self.system.stats.add
        for name, value in current.items():
            delta = value - self._flushed.get(name, 0)
            if delta:
                add(name, delta)
                self._flushed[name] = value

    # -- end of run ----------------------------------------------------

    def finalize(self) -> DetectionScoreboard:
        """Close the books: anything still armed stays undetected."""
        self._await_mac.clear()
        self._held.clear()
        self._poisoned.clear()
        self._armed_merkle.clear()
        return self.scoreboard

    @property
    def triggered(self) -> int:
        """How many planned faults actually fired."""
        return self.scoreboard.injected

    @property
    def untriggered(self) -> int:
        """Planned faults whose trigger point the run never reached."""
        return len(self.plan) - self.scoreboard.injected
