"""The detection scoreboard: what was injected, what caught it, when.

Every injected fault gets a :class:`FaultRecord`. When a defense
mechanism fires — the MAC interval check (section 4.3), the immediate
own-PID spoof check, pad coherence (section 6.1), or the Merkle/CHash
verify (section 6.2) — the record is stamped with the mechanism name
and the detection latency in both *transactions* and *cycles*. The
transaction unit is the stream the defense counts: protected messages
for the MAC interval check (so ``latency_tx <= auth_interval`` holds
by construction), pad consultations for pad coherence, verification
climbs for the hash tree. Faults still undetected when the run ends stay
on the board as such: an undetected fault is a finding, not an
accounting gap.

Aggregate counters are exported through the system's
:class:`~repro.sim.stats.StatsRegistry` (``faults.injected``,
``faults.detected``, ``faults.undetected``, ``faults.masked``,
per-mechanism ``faults.by_mechanism.<name>``, ``faults.recovered``)
so sweep results and reports carry the outcome without any extra
plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: mechanism names stamped into FaultRecord.mechanism
MECH_MAC = "mac_interval"
MECH_SPOOF = "spoof_self"
MECH_PAD = "pad_coherence"
MECH_MERKLE = "merkle_verify"
MECHANISMS = (MECH_MAC, MECH_SPOOF, MECH_PAD, MECH_MERKLE)


@dataclass
class FaultRecord:
    """Lifecycle of one injected fault."""

    kind: str
    label: str
    group_id: int = -1
    cpu: int = -1
    inject_cycle: int = -1
    inject_tx: int = -1          # defense-stream position at injection
    detect_cycle: int = -1
    detect_tx: int = -1
    mechanism: Optional[str] = None
    recovery: Optional[str] = None   # policy applied after detection
    recovered: bool = False          # run continued past the fault
    masked: bool = False             # fault state overwritten unseen

    @property
    def detected(self) -> bool:
        return self.mechanism is not None

    @property
    def latency_cycles(self) -> int:
        if not self.detected:
            return -1
        return self.detect_cycle - self.inject_cycle

    @property
    def latency_tx(self) -> int:
        if not self.detected or self.inject_tx < 0 or self.detect_tx < 0:
            return -1
        return self.detect_tx - self.inject_tx

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "label": self.label,
            "group_id": self.group_id,
            "cpu": self.cpu,
            "inject_cycle": self.inject_cycle,
            "inject_tx": self.inject_tx,
            "detected": self.detected,
            "mechanism": self.mechanism,
            "detect_cycle": self.detect_cycle,
            "detect_tx": self.detect_tx,
            "latency_cycles": self.latency_cycles,
            "latency_tx": self.latency_tx,
            "recovery": self.recovery,
            "recovered": self.recovered,
            "masked": self.masked,
        }


@dataclass
class DetectionScoreboard:
    """All fault records of one run plus aggregate accounting."""

    records: List[FaultRecord] = field(default_factory=list)
    penalty_cycles: int = 0   # recovery cycles charged to the run

    def open_record(self, kind: str, label: str, group_id: int = -1,
                    cpu: int = -1, cycle: int = -1,
                    tx: int = -1) -> FaultRecord:
        record = FaultRecord(kind=kind, label=label, group_id=group_id,
                             cpu=cpu, inject_cycle=cycle, inject_tx=tx)
        self.records.append(record)
        return record

    def mark_detected(self, record: FaultRecord, mechanism: str,
                      cycle: int, tx: int = -1) -> None:
        record.mechanism = mechanism
        record.detect_cycle = cycle
        record.detect_tx = tx

    # -- aggregates ----------------------------------------------------

    @property
    def injected(self) -> int:
        return len(self.records)

    @property
    def detected(self) -> int:
        return sum(1 for record in self.records if record.detected)

    @property
    def undetected(self) -> int:
        return sum(1 for record in self.records
                   if not record.detected and not record.masked)

    @property
    def masked(self) -> int:
        return sum(1 for record in self.records if record.masked)

    @property
    def recovered(self) -> int:
        return sum(1 for record in self.records if record.recovered)

    def by_mechanism(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            if record.mechanism is not None:
                counts[record.mechanism] = \
                    counts.get(record.mechanism, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        return {
            "injected": self.injected,
            "detected": self.detected,
            "undetected": self.undetected,
            "masked": self.masked,
            "recovered": self.recovered,
            "penalty_cycles": self.penalty_cycles,
            "by_mechanism": self.by_mechanism(),
            "records": [record.as_dict() for record in self.records],
        }

    def summary_rows(self) -> List[List[str]]:
        """Table rows for the CLI: one line per fault."""
        rows = []
        for record in self.records:
            if record.detected:
                outcome = record.mechanism
                latency = (f"{record.latency_tx}tx/"
                           f"{record.latency_cycles}cy")
            elif record.masked:
                outcome, latency = "masked", "-"
            else:
                outcome, latency = "UNDETECTED", "-"
            rows.append([record.label, outcome, latency,
                         record.recovery or "-",
                         "yes" if record.recovered else "no"])
        return rows
