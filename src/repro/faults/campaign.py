"""Fault campaigns: the kind x policy detection matrix.

``run_campaign`` simulates one workload once per (fault kind, recovery
policy) cell on a miss-heavy secured machine — small L2 so the bus and
memory paths actually carry traffic, short authentication interval so
the MAC check fires often enough to bound detection latency — and
reduces the scoreboards into a JSON-ready report. ``python -m repro
faults`` is a thin CLI over it; CI runs it as the fault-matrix smoke
job and fails on any undetected fault.

Every cell is identical up to its fault trigger, so with ``fork=True``
(the default) the campaign simulates the **clean prefix once**: a
counting hook mirrors the injector's deterministic stream cursors
while the run pauses every few thousand accesses to capture in-memory
machine snapshots (``repro.sim.checkpoint``). Each cell then forks
from the deepest snapshot that still precedes its trigger, and the
injector's cursors are primed from the snapshot's counts — cell
results, scoreboards and recordings stay bit-identical to cold runs
(pinned by tests/sim/test_checkpoint.py). Cells whose trigger falls
before the first snapshot simply run cold, so the default shallow
triggers lose nothing.

``verify_identity`` is the bit-identity half of the acceptance
criterion: a system with an injector attached whose plan never
triggers must produce results identical to an untouched system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..bus.transaction import TransactionType
from ..config import KB, SystemConfig, e6000_config
from ..errors import ReproError
from .injector import FaultInjector
from .plan import FaultKind, FaultPlan, FaultSpec
from .recovery import HALT, POLICIES, REKEY_REPLAY

#: stream index each kind's default fault triggers on — early enough
#: that every miss-heavy smoke run reaches it, late enough that the
#: machinery it perturbs (masks, pads, tree nodes) is warmed up.
DEFAULT_TRIGGER = {
    FaultKind.DROP: 3,
    FaultKind.REORDER: 3,
    FaultKind.SPOOF: 3,
    FaultKind.BIT_FLIP: 3,
    FaultKind.MASK_DESYNC: 3,
    FaultKind.PAD_CORRUPT: 2,
    FaultKind.SEQ_CORRUPT: 2,
    FaultKind.MERKLE_FLIP: 2,
}


def campaign_config(cpus: int = 4, l2_kb: int = 64,
                    interval: int = 10,
                    num_masks: Optional[int] = 8) -> SystemConfig:
    """The miss-heavy secured machine the campaign runs on."""
    config = e6000_config(num_processors=cpus, l2_mb=1,
                          auth_interval=interval)
    config = config.with_l2_size(l2_kb * KB).with_masks(num_masks)
    return config.with_memprotect(encryption_enabled=True,
                                  integrity_enabled=True)


def default_spec(kind: str, num_cpus: int,
                 trigger: Optional[int] = None) -> FaultSpec:
    """The canonical single fault of a kind for smoke/CI runs."""
    if trigger is None:
        trigger = DEFAULT_TRIGGER[kind]
    if kind == FaultKind.SPOOF:
        return FaultSpec(kind, trigger, claimed_pid=1 % num_cpus)
    if kind == FaultKind.MASK_DESYNC:
        return FaultSpec(kind, trigger, cpu=0)
    if kind in (FaultKind.PAD_CORRUPT, FaultKind.SEQ_CORRUPT):
        return FaultSpec(kind, trigger, cpu=0)
    return FaultSpec(kind, trigger)


class _PrefixCountingHook:
    """Mirrors the injector's deterministic stream cursors, perturbing
    nothing.

    Sits on the same two seams the injector uses
    (``SharedBus.fault_hook`` + ``MemProtectLayer.fault_hook``) and
    counts exactly what the injector counts — protected data messages
    per group, pad consultations per CPU, hash-tree verifies — plus
    the last MAC checkpoint cycle per group, which seeds the recovery
    engine's replay windows at fork time. Module-level and
    state-only, so it pickles inside captured snapshots.
    """

    def __init__(self):
        self.stream: Dict[int, int] = {}    # group -> data messages
        self.pad: Dict[int, int] = {}       # cpu -> pad consultations
        self.verify = 0                     # hash-tree verifies
        self.mac: Dict[int, int] = {}       # group -> last MAC cycle

    def counts(self) -> Dict[str, object]:
        return {"stream": dict(self.stream), "pad": dict(self.pad),
                "verify": self.verify, "mac": dict(self.mac)}

    # bus seam — the counting condition matches FaultInjector._on_bus_tx
    def __call__(self, transaction) -> None:
        if transaction.type is TransactionType.AUTH_MAC:
            self.mac[transaction.group_id] = transaction.grant_cycle
            return
        if (transaction.type.carries_data
                and transaction.supplied_by_cache):
            group = transaction.group_id
            self.stream[group] = self.stream.get(group, 0) + 1

    # memprotect seam — zero penalties, counts only
    def on_pad_event(self, cpu, line_address, clock, hit) -> int:
        self.pad[cpu] = self.pad.get(cpu, 0) + 1
        return 0

    def on_pad_writeback(self, cpu, line_address, affected) -> None:
        return None

    def on_verify_event(self, cpu, address, clock) -> int:
        self.verify += 1
        return 0


def _count_for(counts: Dict[str, object], spec: FaultSpec) -> int:
    """The cursor a spec's trigger is measured against."""
    if spec.kind in FaultKind.BUS:
        return counts["stream"].get(spec.group_id, 0)
    if spec.kind == FaultKind.MERKLE_FLIP:
        return counts["verify"]
    return counts["pad"].get(spec.cpu, 0)


def _pick_snapshot(snapshots, spec: FaultSpec):
    """Deepest snapshot strictly before the spec's trigger event.

    ``count <= trigger`` is the soundness condition: counts are
    events-already-happened, the fault fires on event index
    ``trigger``, so equality still precedes the injection.
    """
    usable = [snapshot for snapshot in snapshots
              if _count_for(snapshot.meta["extra"], spec)
              <= spec.trigger]
    if not usable:
        return None
    return max(usable, key=lambda snapshot: snapshot.accesses)


def _simulate_prefix(config: SystemConfig, bench_workload, point,
                     specs: Sequence[FaultSpec], record_diff: bool,
                     chunk: Optional[int] = None):
    """Run the clean (fault-free) prefix once, snapshotting as it goes.

    Returns ``(snapshots, clean_recording)``. Without ``record_diff``
    the run stops as soon as every spec's trigger has passed (no later
    snapshot could be forked from); with it, the run continues to
    completion so its recording replaces the separate clean
    ``record_run`` the un-forked path pays for.
    """
    from ..sim.checkpoint import capture
    from ..sim.sweep import build_system
    from ..smp.fastpath import _finish_run, _run_loop, new_counters

    system = build_system(config)
    recorder = None
    if record_diff:
        from ..obs.recording import Recorder
        # Recorder first, hook second — mirrors the cold cells, and
        # the recorder travels inside every captured snapshot.
        recorder = Recorder().attach(system)
    hook = _PrefixCountingHook()
    system.bus.fault_hook = hook
    if system.memprotect is not None:
        system.memprotect.fault_hook = hook

    num_cpus = bench_workload.num_cpus
    clocks = [0] * num_cpus
    cursors = [0] * num_cpus
    counters = new_counters(num_cpus)
    if chunk is None:
        chunk = max(512, bench_workload.total_accesses // 12)

    snapshots = []
    running = True
    snapshotting = True
    while running:
        running = _run_loop(system, bench_workload, clocks, cursors,
                            counters, stop_accesses=chunk)
        if snapshotting:
            snapshots.append(capture(
                system, bench_workload, point, clocks, cursors,
                counters, tag=f"prefix-{sum(cursors)}",
                recorded=record_diff, extra=hook.counts()))
            if all(_count_for(hook.counts(), spec) > spec.trigger
                   for spec in specs):
                snapshotting = False  # nothing later is forkable
                if not record_diff:
                    break

    clean_recording = None
    if record_diff:
        from ..obs.recording import Recording
        result = _finish_run(system, bench_workload, clocks, counters)
        clean_recording = Recording.build(point, recorder, result)
    return snapshots, clean_recording


def _all_within_interval(entries: Sequence[Dict[str, object]],
                         interval: int) -> bool:
    """Was every detection within one authentication interval?

    MAC-interval detections are measured in the stream the interval
    counts (protected messages), so the bound is ``interval`` plus the
    checkpoint itself. Consultation-triggered mechanisms (own-PID
    snoop, pad coherence, hash verify) fire at the first use of the
    corrupted state; their cycle latency must not exceed one observed
    authentication interval — bounded here by the slowest MAC-interval
    detection in the same matrix (when one is present).
    """
    from .scoreboard import MECH_MAC

    detected = [entry for entry in entries if entry["detected"]]
    mac_cycles = [entry["latency_cycles"] for entry in detected
                  if entry["mechanism"] == MECH_MAC]
    cycle_bound = max(mac_cycles) if mac_cycles else None
    for entry in detected:
        if entry["mechanism"] == MECH_MAC:
            if entry["latency_tx"] > interval + 1:
                return False
        elif cycle_bound is not None and \
                entry["latency_cycles"] > cycle_bound:
            return False
    return True


def run_campaign(kinds: Sequence[str] = FaultKind.ALL,
                 policies: Sequence[str] = (HALT, REKEY_REPLAY),
                 workload: str = "ocean", cpus: int = 4,
                 scale: float = 0.05, seed: int = 0,
                 interval: int = 10,
                 config: Optional[SystemConfig] = None,
                 record_diff: bool = False,
                 fork: bool = True,
                 trigger: Optional[int] = None
                 ) -> Dict[str, object]:
    """One run per (kind, policy) cell; returns the matrix report.

    With ``fork=True`` the shared clean prefix is simulated once and
    every cell forks from the deepest snapshot preceding its trigger
    (module docstring); ``fork=False`` forces the historical
    every-cell-cold behavior. ``trigger`` overrides every kind's
    default trigger index (deep triggers are where forking pays).

    With ``record_diff=True`` the clean (fault-free) run is recorded
    once — in fork mode it *is* the prefix run, not a separate
    simulation — every cell additionally records its faulted run, and
    each entry gains a ``divergence`` summary — where the faulted
    timeline first departs from the clean one and by how much (the
    full machinery is ``repro.obs.diff``; see docs/record_replay.md).
    """
    from ..sim.sweep import SweepPoint, build_system
    from ..workloads.registry import generate

    for policy in policies:
        if policy not in POLICIES:
            raise ReproError(f"unknown recovery policy {policy!r}")
    if config is None:
        config = campaign_config(cpus=cpus, interval=interval)
    bench_workload = generate(workload, cpus, scale=scale, seed=seed)
    clean_point = SweepPoint(workload, config, scale=scale, seed=seed)
    cell_specs = {kind: default_spec(kind, cpus, trigger)
                  for kind in kinds}

    snapshots = []
    clean_recording = None
    if fork:
        snapshots, clean_recording = _simulate_prefix(
            config, bench_workload, clean_point,
            list(cell_specs.values()), record_diff)
    elif record_diff:
        from ..obs.recording import record_run
        clean_recording = record_run(clean_point)

    entries: List[Dict[str, object]] = []
    for kind in kinds:
        for policy in policies:
            spec = cell_specs[kind]
            plan = FaultPlan(specs=(spec,), seed=seed)
            snapshot = _pick_snapshot(snapshots, spec)
            halted, error, cycles = False, "", -1
            result = None
            if snapshot is not None:
                from ..sim.checkpoint import restore
                from ..smp.fastpath import _finish_run, _run_loop
                system, clocks, cursors, counters = restore(snapshot)
                # The recorder (when present) rides inside the
                # snapshot; injector second, as in the cold path.
                recorder = system._obs if record_diff else None
                injector = FaultInjector(plan,
                                         policy=policy).attach(system)
                injector.prime(**snapshot.meta["extra"])
                try:
                    _run_loop(system, bench_workload, clocks,
                              cursors, counters)
                    result = _finish_run(system, bench_workload,
                                         clocks, counters)
                    cycles = result.cycles
                except ReproError as exc:
                    halted = True
                    error = f"{type(exc).__name__}: {exc}"
            else:
                system = build_system(config)
                recorder = None
                if record_diff:
                    from ..obs.recording import Recorder
                    # Recorder first, injector second: the injector's
                    # inject/detect events route through system._obs.
                    recorder = Recorder().attach(system)
                injector = FaultInjector(plan,
                                         policy=policy).attach(system)
                try:
                    result = system.run(bench_workload)
                    cycles = result.cycles
                except ReproError as exc:
                    halted = True
                    error = f"{type(exc).__name__}: {exc}"
            scoreboard = injector.finalize()
            records = scoreboard.records
            record = records[0] if records else None
            entries.append({
                "kind": kind,
                "policy": policy,
                "forked": snapshot is not None,
                "triggered": bool(records),
                "detected": record.detected if record else False,
                "mechanism": record.mechanism if record else None,
                "latency_tx": record.latency_tx if record else -1,
                "latency_cycles": (record.latency_cycles
                                   if record else -1),
                "masked": record.masked if record else False,
                "recovered": record.recovered if record else False,
                "completed": not halted,
                "halted": halted,
                "error": error,
                "cycles": cycles,
                "penalty_cycles": scoreboard.penalty_cycles,
            })
            if record_diff:
                entries[-1]["divergence"] = _divergence_summary(
                    clean_recording, clean_point, recorder, result,
                    error or None, plan, policy)

    detected_all = all(entry["detected"] for entry in entries)
    within_interval = _all_within_interval(entries, interval)
    report = {
        "workload": workload,
        "num_cpus": cpus,
        "scale": scale,
        "seed": seed,
        "auth_interval": interval,
        "kinds": list(kinds),
        "policies": list(policies),
        "entries": entries,
        "all_detected": detected_all,
        "within_interval": within_interval,
        "fork": fork,
        "forked_cells": sum(1 for entry in entries
                            if entry["forked"]),
    }
    if record_diff:
        report["record_diff"] = True
        report["clean_cycles"] = clean_recording.cycles
    return report


def _divergence_summary(clean_recording, clean_point, recorder,
                        result, halted: Optional[str], plan: FaultPlan,
                        policy: str) -> Dict[str, object]:
    """Reduce a cell's diff-vs-clean to the campaign-report fields."""
    from ..obs.diff import diff_recordings
    from ..obs.recording import Recording
    faulted = Recording.build(clean_point, recorder, result,
                              halted=halted, fault_plan=plan,
                              fault_policy=policy)
    diff = diff_recordings(clean_recording, faulted)
    first = diff["first_divergence"]
    summary: Dict[str, object] = {
        "identical": diff["identical"],
        "counters_changed": len(diff["counters"]),
        "cycles_delta": None if diff["cycles"] is None
        else diff["cycles"]["delta"],
    }
    if first is not None:
        side = first["b"] or first["a"]
        summary["first_divergence"] = {
            "index": first["index"],
            "event": side["name"],
            "category": side["category"],
            "cycle": side["cycle"],
            "cpu": side["cpu"],
        }
    return summary


def verify_identity(config: Optional[SystemConfig] = None,
                    workload: str = "ocean", cpus: int = 4,
                    scale: float = 0.05,
                    seed: int = 0) -> Dict[str, object]:
    """No-trigger injector attached vs vanilla: must be bit-identical."""
    from ..sim.sweep import build_system
    from ..workloads.registry import generate

    if config is None:
        config = campaign_config(cpus=cpus)
    bench_workload = generate(workload, cpus, scale=scale, seed=seed)

    vanilla = build_system(config).run(bench_workload)

    system = build_system(config)
    # A plan whose trigger index the run never reaches: every hook
    # fires, nothing ever perturbs.
    plan = FaultPlan.single(FaultKind.DROP, trigger=1 << 40)
    injector = FaultInjector(plan).attach(system)
    faulted = system.run(bench_workload)
    injector.finalize()

    identical = (vanilla.cycles == faulted.cycles
                 and list(vanilla.per_cpu_cycles)
                 == list(faulted.per_cpu_cycles)
                 and vanilla.stats == faulted.stats)
    return {
        "identical": identical,
        "cycles": vanilla.cycles,
        "cycles_with_hooks": faulted.cycles,
        "untriggered": injector.untriggered,
    }
