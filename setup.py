from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=("SENSS: Security Enhancement to Symmetric Shared Memory "
                 "Multiprocessors (HPCA 2005) - full reproduction"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={
        "vector": ["numpy"],
        "test": ["pytest", "pytest-benchmark", "hypothesis", "numpy"],
    },
)
